//===- cache/Cache.cpp ----------------------------------------------------===//

#include "cache/Cache.h"

#include "common/Error.h"

#include <cassert>

using namespace hetsim;

CacheConfig CacheConfig::cpuL1D() {
  CacheConfig C;
  C.Name = "cpu.l1d";
  C.SizeBytes = 32 * 1024;
  C.Ways = 8;
  C.HitLatency = 2;
  return C;
}

CacheConfig CacheConfig::cpuL1I() {
  CacheConfig C;
  C.Name = "cpu.l1i";
  C.SizeBytes = 32 * 1024;
  C.Ways = 8;
  C.HitLatency = 2;
  return C;
}

CacheConfig CacheConfig::cpuL2() {
  CacheConfig C;
  C.Name = "cpu.l2";
  C.SizeBytes = 256 * 1024;
  C.Ways = 8;
  C.HitLatency = 8;
  return C;
}

CacheConfig CacheConfig::gpuL1D() {
  CacheConfig C;
  C.Name = "gpu.l1d";
  C.SizeBytes = 32 * 1024;
  C.Ways = 8;
  C.HitLatency = 2;
  return C;
}

CacheConfig CacheConfig::gpuL1I() {
  CacheConfig C;
  C.Name = "gpu.l1i";
  C.SizeBytes = 4 * 1024;
  C.Ways = 4;
  C.HitLatency = 1;
  return C;
}

CacheConfig CacheConfig::sharedL3() {
  CacheConfig C;
  C.Name = "l3";
  C.SizeBytes = 8 * 1024 * 1024;
  C.Ways = 32;
  C.HitLatency = 20;
  return C;
}

Cache::Cache(const CacheConfig &Cfg, uint64_t RngSeed)
    : Config(Cfg), Rng(RngSeed) {
  if (!Config.isValid())
    fatalError(("invalid cache geometry for " + Config.Name).c_str());
  if (Config.MaxExplicitWays == 0)
    Config.MaxExplicitWays = Config.Ways > 1 ? Config.Ways - 1 : 1;
  NumSets = Config.numSets();
  LineShift = log2Exact(Config.LineBytes);
  Lines.resize(uint64_t(NumSets) * Config.Ways);
}

unsigned Cache::setIndex(Addr Address) const {
  return unsigned((Address >> LineShift) & (NumSets - 1));
}

Addr Cache::tagOf(Addr Address) const {
  return Address >> (LineShift + log2Exact(NumSets));
}

Addr Cache::lineAddr(Addr Address) const {
  return Address & ~Addr(Config.LineBytes - 1);
}

Cache::Line *Cache::findLine(Addr Address) {
  unsigned SetBase = setIndex(Address) * Config.Ways;
  Addr Tag = tagOf(Address);
  for (unsigned W = 0; W != Config.Ways; ++W) {
    Line &L = Lines[SetBase + W];
    if (L.Valid && L.Tag == Tag)
      return &L;
  }
  return nullptr;
}

const Cache::Line *Cache::findLine(Addr Address) const {
  return const_cast<Cache *>(this)->findLine(Address);
}

int Cache::chooseVictim(unsigned SetBase, bool FillIsExplicit) {
  // Invalid ways first.
  for (unsigned W = 0; W != Config.Ways; ++W)
    if (!Lines[SetBase + W].Valid)
      return int(W);

  if (Config.Replacement == ReplacementKind::Random) {
    return int(Rng.nextBelow(Config.Ways));
  }

  const bool Hybrid = Config.Replacement == ReplacementKind::HybridLru;

  if (Hybrid && FillIsExplicit) {
    // Enforce the explicit-capacity cap: if the set already holds the
    // maximum number of explicit ways, evict the LRU explicit line;
    // otherwise fall through to plain LRU over all ways.
    unsigned ExplicitCount = 0;
    int LruExplicit = -1;
    for (unsigned W = 0; W != Config.Ways; ++W) {
      const Line &L = Lines[SetBase + W];
      if (!L.Explicit)
        continue;
      ++ExplicitCount;
      if (LruExplicit < 0 ||
          L.LruStamp < Lines[SetBase + unsigned(LruExplicit)].LruStamp)
        LruExplicit = int(W);
    }
    if (ExplicitCount >= Config.MaxExplicitWays)
      return LruExplicit;
  }

  int Victim = -1;
  for (unsigned W = 0; W != Config.Ways; ++W) {
    const Line &L = Lines[SetBase + W];
    // Hybrid rule (Section II-B5): an implicitly-managed fill may not
    // evict an explicitly-managed block.
    if (Hybrid && !FillIsExplicit && L.Explicit)
      continue;
    if (Victim < 0 ||
        L.LruStamp < Lines[SetBase + unsigned(Victim)].LruStamp)
      Victim = int(W);
  }
  return Victim; // -1 when every candidate way is explicit (bypass).
}

CacheAccessResult Cache::access(Addr Address, bool IsWrite,
                                bool MarkExplicit) {
  CacheAccessResult Result;
  ++Stats.Accesses;

  if (Line *L = findLine(Address)) {
    ++Stats.Hits;
    Result.Hit = true;
    L->LruStamp = NextStamp++;
    if (IsWrite) {
      L->Dirty = true;
      if (L->State == CohState::Exclusive || L->State == CohState::Shared)
        L->State = CohState::Modified;
    }
    if (MarkExplicit)
      L->Explicit = true;
    return Result;
  }

  ++Stats.Misses;
  unsigned SetBase = setIndex(Address) * Config.Ways;
  int Way = chooseVictim(SetBase, MarkExplicit);
  if (Way < 0) {
    ++Stats.BypassedFills;
    Result.BypassedFill = true;
    return Result;
  }

  Line &Victim = Lines[SetBase + unsigned(Way)];
  if (Victim.Valid) {
    ++Stats.Evictions;
    if (Victim.Dirty) {
      ++Stats.Writebacks;
      Result.WroteBack = true;
      unsigned SetIdx = SetBase / Config.Ways;
      Result.VictimAddr =
          (Victim.Tag << (LineShift + log2Exact(NumSets))) |
          (Addr(SetIdx) << LineShift);
    }
  }

  Victim.Valid = true;
  Victim.Tag = tagOf(Address);
  Victim.Dirty = IsWrite;
  Victim.Explicit = MarkExplicit;
  Victim.State = IsWrite ? CohState::Modified : CohState::Exclusive;
  Victim.LruStamp = NextStamp++;
  return Result;
}

bool Cache::probe(Addr Address) const { return findLine(Address) != nullptr; }

CohState Cache::lineState(Addr Address) const {
  const Line *L = findLine(Address);
  return L ? L->State : CohState::Invalid;
}

void Cache::setLineState(Addr Address, CohState State) {
  Line *L = findLine(Address);
  assert(L && "setLineState on a non-resident line");
  L->State = State;
  if (State == CohState::Invalid) {
    L->Valid = false;
    L->Dirty = false;
    L->Explicit = false;
  }
}

bool Cache::invalidate(Addr Address) {
  Line *L = findLine(Address);
  if (!L)
    return false;
  bool WasDirty = L->Dirty;
  L->Valid = false;
  L->Dirty = false;
  L->Explicit = false;
  L->State = CohState::Invalid;
  return WasDirty;
}

bool Cache::downgradeToShared(Addr Address) {
  Line *L = findLine(Address);
  if (!L)
    return false;
  bool WasDirty = L->Dirty;
  L->Dirty = false;
  L->State = CohState::Shared;
  return WasDirty;
}

void Cache::flushAll(const std::function<void(Addr)> &WritebackFn) {
  for (unsigned Set = 0; Set != NumSets; ++Set) {
    for (unsigned W = 0; W != Config.Ways; ++W) {
      Line &L = Lines[Set * Config.Ways + W];
      if (!L.Valid)
        continue;
      if (L.Dirty && WritebackFn) {
        Addr Address = (L.Tag << (LineShift + log2Exact(NumSets))) |
                       (Addr(Set) << LineShift);
        WritebackFn(Address);
      }
      L = Line();
    }
  }
}

unsigned Cache::residentLines() const {
  unsigned Count = 0;
  for (const Line &L : Lines)
    if (L.Valid)
      ++Count;
  return Count;
}

unsigned Cache::residentExplicitLines() const {
  unsigned Count = 0;
  for (const Line &L : Lines)
    if (L.Valid && L.Explicit)
      ++Count;
  return Count;
}

Cache::FoldSnap Cache::foldSnapshot() const {
  FoldSnap S;
  S.Lines.reserve(Lines.size());
  for (const Line &L : Lines)
    S.Lines.push_back({L.Tag, L.LruStamp, L.State, L.Valid, L.Dirty,
                       L.Explicit});
  S.NextStamp = NextStamp;
  S.RngState = Rng.state();
  S.Stats = Stats;
  S.Ways = Config.Ways;
  return S;
}

void Cache::applyFold(const FoldSnap &S2, const FoldSnap &S3, uint64_t Rem) {
  assert(S2.Lines.size() == Lines.size() && S3.Lines.size() == Lines.size());
  for (size_t I = 0; I != Lines.size(); ++I)
    Lines[I].LruStamp += (S3.Lines[I].LruStamp - S2.Lines[I].LruStamp) * Rem;
  NextStamp += (S3.NextStamp - S2.NextStamp) * Rem;
  Stats.Accesses += (S3.Stats.Accesses - S2.Stats.Accesses) * Rem;
  Stats.Hits += (S3.Stats.Hits - S2.Stats.Hits) * Rem;
  Stats.Misses += (S3.Stats.Misses - S2.Stats.Misses) * Rem;
  Stats.Evictions += (S3.Stats.Evictions - S2.Stats.Evictions) * Rem;
  Stats.Writebacks += (S3.Stats.Writebacks - S2.Stats.Writebacks) * Rem;
  Stats.BypassedFills +=
      (S3.Stats.BypassedFills - S2.Stats.BypassedFills) * Rem;
}
