//===- memory/MemorySystem.cpp --------------------------------------------===//

#include "memory/MemorySystem.h"

#include "common/Error.h"
#include "common/Units.h"
#include "memory/AddressSpaceModel.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>

using namespace hetsim;

namespace {

uint64_t profNowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

std::atomic<int> MemPhaseOverride{-1};

} // namespace

bool MemorySystem::memPhaseProfilingEnabled() {
  int Override = MemPhaseOverride.load(std::memory_order_relaxed);
  if (Override >= 0)
    return Override != 0;
  const char *Env = std::getenv("HETSIM_MEMPHASE");
  return Env && *Env && std::strcmp(Env, "0") != 0;
}

void MemorySystem::setMemPhaseProfilingForTesting(int Enabled) {
  MemPhaseOverride.store(Enabled, std::memory_order_relaxed);
}

MemorySystem::MemorySystem(const MemHierConfig &Cfg)
    : Config(Cfg), CpuMshr(Cfg.CpuMshrs), GpuMshr(Cfg.GpuMshrs),
      CpuTlb(Cfg.CpuTlbEntries, Cfg.TlbWays, Cfg.CpuPageBytes),
      GpuTlb(Cfg.GpuTlbEntries, Cfg.TlbWays, Cfg.GpuPageBytes),
      CpuPhys("cpu.dram", Cfg.DeviceBytes),
      GpuPhys("gpu.dram", Cfg.DeviceBytes),
      CpuPt(PuKind::Cpu, Cfg.CpuPageBytes),
      GpuPt(PuKind::Gpu, Cfg.GpuPageBytes),
      Smem(Cfg.ScratchpadBytes, Cfg.ScratchpadLatency),
      Prefetcher(Cfg.Prefetch) {
  if (Cfg.UseMeshNoc)
    Noc = std::make_unique<MeshNoc>(Cfg.Mesh);
  else
    Noc = std::make_unique<RingBus>(Cfg.Ring);
  CpuL1 = std::make_unique<Cache>(Cfg.CpuL1, /*RngSeed=*/11);
  CpuL2 = std::make_unique<Cache>(Cfg.CpuL2, /*RngSeed=*/13);
  GpuL1 = std::make_unique<Cache>(Cfg.GpuL1, /*RngSeed=*/17);
  L3 = std::make_unique<Cache>(Cfg.L3, /*RngSeed=*/19);
  CpuDram = std::make_unique<DramSystem>(Cfg.Dram);
  if (Cfg.SeparateGpuDram)
    GpuDramDevice = std::make_unique<DramSystem>(Cfg.Dram);

  // Register the DRAM conservation counters once; references stay valid
  // until Stats.reset(), which this class never calls.
  DramCpuDemand = &Stats.counterRef("dram.cpu.demand");
  DramCpuWritebacks = &Stats.counterRef("dram.cpu.writebacks");
  DramCpuPrefetchReads = &Stats.counterRef("dram.cpu.prefetch_reads");
  DramGpuDemand = &Stats.counterRef("dram.gpu.demand");
  BgDrains = &Stats.counterRef("dram.cpu.bg_drains");
  BgRequests = &Stats.counterRef("dram.cpu.bg_reqs");
  BgDrainCycles = &Stats.histogramRef("dram.cpu.bg_drain_cycles");

  // Per-access counters, likewise bound once so access() never hashes a
  // counter name.
  MemCpuAccesses = &Stats.counterRef("mem.cpu_accesses");
  MemGpuAccesses = &Stats.counterRef("mem.gpu_accesses");
  MemDemandMaps = &Stats.counterRef("mem.demand_maps");
  MemCohRemote = &Stats.counterRef("mem.coh_remote");
  MemCohWritebacks = &Stats.counterRef("mem.coh_writebacks");
  MemSpaceViolations = &Stats.counterRef("mem.space_violations");
  MemOwnershipViolations = &Stats.counterRef("mem.ownership_violations");
  MemPagefaults = &Stats.counterRef("mem.pagefaults");
  MemGpuL1Writebacks = &Stats.counterRef("mem.gpu_l1_writebacks");
  MemPrefetchFills = &Stats.counterRef("mem.prefetch_fills");
  MemMshrMerges = &Stats.counterRef("mem.mshr_merges");

  // Memory-phase fast path: resolve the fidelity tier once and register
  // the fold-coverage counters up front so the hetsim-metrics-v1 key set
  // is identical across modes.
  MFMode = memFastMode();
  ProfileOn = memPhaseProfilingEnabled();
  MFCounters.FoldAttempts = &Stats.counterRef("memfast.fold_attempts");
  MFCounters.Folds = &Stats.counterRef("memfast.folds");
  MFCounters.FoldedRecords = &Stats.counterRef("memfast.folded_records");
  MFCounters.WarmAccesses = &Stats.counterRef("memfast.warm_accesses");
  MFCounters.SampledWindows = &Stats.counterRef("memfast.sampled_windows");
  MFCounters.SampledRecords = &Stats.counterRef("memfast.sampled_records");
  Stats.setCounter("memfast.mode", uint64_t(MFMode));
  for (unsigned R = 1; R != NumMemFoldReasons; ++R)
    MFCounters.Fallback[R] = &Stats.counterRef(
        std::string("memfast.fallback.") +
        memFoldReasonName(MemFoldReason(R)));
}

void MemorySystem::drainBackground(Cycle NowCpu) {
  uint64_t Pending = CpuDram->queuedRequests();
  if (Pending == 0)
    return;
  Cycle Done;
  if (ProfileOn) {
    uint64_t D0 = profNowNs();
    Done = CpuDram->drainFrFcfs(NowCpu);
    ProfDramNs += profNowNs() - D0;
  } else {
    Done = CpuDram->drainFrFcfs(NowCpu);
  }
  Cycle Duration = Done > NowCpu ? Done - NowCpu : 0;
  ++*BgDrains;
  *BgRequests += Pending;
  BgDrainCycles->addSample(Duration);
  if (DrainHook)
    DrainHook({NowCpu, Duration, Pending});
}

DramSystem &MemorySystem::gpuDram() {
  return GpuDramDevice ? *GpuDramDevice : *CpuDram;
}

void MemorySystem::mapRange(PuKind Pu, Addr VBase, uint64_t Bytes) {
  // A discrete GPU memory backs GPU-private and (ADSM) shared ranges;
  // everything else lives in the CPU/unified device.
  if (Pu == PuKind::Cpu) {
    CpuPt.mapRange(VBase, Bytes, CpuPhys);
    return;
  }
  PhysicalMemory &Device = Config.SeparateGpuDram ? GpuPhys : CpuPhys;
  GpuPt.mapRange(VBase, Bytes, Device);
}

bool MemorySystem::applyCoherence(PuKind Requestor, Addr PAddr, bool IsWrite,
                                  Cycle &ExtraCpuCycles) {
  CoherenceAction Action = Dir.onAccess(Requestor, PAddr, IsWrite);
  if (!Action.InvalidateRemote && !Action.FetchFromRemote)
    return false;

  ++*MemCohRemote;
  // Remote operations touch the other PU's private caches.
  if (Requestor == PuKind::Cpu) {
    if (Action.FetchFromRemote) {
      if (IsWrite ? GpuL1->invalidate(PAddr) : GpuL1->downgradeToShared(PAddr))
        ++*MemCohWritebacks;
    } else if (Action.InvalidateRemote) {
      GpuL1->invalidate(PAddr);
    }
  } else {
    if (Action.FetchFromRemote) {
      bool Dirty1 =
          IsWrite ? CpuL1->invalidate(PAddr) : CpuL1->downgradeToShared(PAddr);
      bool Dirty2 =
          IsWrite ? CpuL2->invalidate(PAddr) : CpuL2->downgradeToShared(PAddr);
      if (Dirty1 || Dirty2)
        ++*MemCohWritebacks;
    } else if (Action.InvalidateRemote) {
      CpuL1->invalidate(PAddr);
      CpuL2->invalidate(PAddr);
    }
  }
  // Each protocol message crosses the NoC between the requestor and the
  // directory's home.
  ExtraCpuCycles += Cycle(Action.Messages) *
                    Noc->uncontendedLatency(ring::CpuStop,
                                            ring::MemCtrlStop);
  return true;
}

Cycle MemorySystem::uncoreAccess(PuKind Pu, Addr PAddr, bool IsWrite,
                                 Cycle NowCpu, bool ExplicitHint,
                                 HitLevel &Level) {
  unsigned SourceStop = Pu == PuKind::Cpu ? ring::CpuStop : ring::GpuStop;

  // GPU with its own memory and no LLC sharing skips the ring/L3 entirely.
  if (Pu == PuKind::Gpu && !Config.GpuSharesL3) {
    Level = HitLevel::Dram;
    ++*(GpuDramDevice ? DramGpuDemand : DramCpuDemand);
    if (ProfileOn) {
      uint64_t D0 = profNowNs();
      Cycle Done = gpuDram().access(PAddr, NowCpu, IsWrite);
      ProfDramNs += profNowNs() - D0;
      return Done;
    }
    return gpuDram().access(PAddr, NowCpu, IsWrite);
  }

  if (!Config.EnableL3) {
    Level = HitLevel::Dram;
    Cycle AtCtrl = Noc->traverse(SourceStop, ring::MemCtrlStop, NowCpu);
    ++*DramCpuDemand;
    Cycle Done;
    if (ProfileOn) {
      uint64_t D0 = profNowNs();
      Done = CpuDram->access(PAddr, AtCtrl, IsWrite);
      ProfDramNs += profNowNs() - D0;
    } else {
      Done = CpuDram->access(PAddr, AtCtrl, IsWrite);
    }
    return Done + Noc->uncontendedLatency(ring::MemCtrlStop, SourceStop);
  }

  unsigned TileStop = Noc->tileStopFor(PAddr);
  Cycle AtTile = Noc->traverse(SourceStop, TileStop, NowCpu);
  CacheAccessResult L3Result = L3->access(PAddr, IsWrite, ExplicitHint);
  Cycle ReturnHops = Noc->uncontendedLatency(TileStop, SourceStop);

  if (L3Result.Hit) {
    Level = HitLevel::L3;
    return AtTile + L3->config().HitLatency + ReturnHops;
  }

  if (L3Result.WroteBack) {
    CpuDram->enqueue(L3Result.VictimAddr, /*IsWrite=*/true);
    ++*DramCpuWritebacks;
  }

  Level = HitLevel::Dram;
  Cycle AtCtrl =
      Noc->traverse(TileStop, ring::MemCtrlStop,
                    AtTile + L3->config().HitLatency /*tag check*/);
  ++*DramCpuDemand;
  Cycle Done;
  if (ProfileOn) {
    uint64_t D0 = profNowNs();
    Done = CpuDram->access(PAddr, AtCtrl, IsWrite);
    ProfDramNs += profNowNs() - D0;
  } else {
    Done = CpuDram->access(PAddr, AtCtrl, IsWrite);
  }
  Cycle BackToTile =
      Done + Noc->uncontendedLatency(ring::MemCtrlStop, TileStop);
  return BackToTile + ReturnHops;
}

MemAccessResult MemorySystem::access(PuKind Pu, Addr VAddr,
                                     [[maybe_unused]] uint32_t Bytes,
                                     bool IsWrite, Cycle NowPu,
                                     bool ExplicitHint) {
  assert(Bytes > 0 && Bytes <= CacheLineBytes &&
         "per-access footprint is at most one line");
  MemAccessResult Result;
  const bool IsCpu = Pu == PuKind::Cpu;
  ++*(IsCpu ? MemCpuAccesses : MemGpuAccesses);

  const uint64_t ProfT0 = ProfileOn ? profNowNs() : 0;
  uint64_t ProfT1 = 0;

  Cycle Latency = 0;

  // 1. Translation.
  Tlb &MyTlb = IsCpu ? CpuTlb : GpuTlb;
  if (!MyTlb.lookup(VAddr)) {
    Result.TlbMiss = true;
    Latency += Config.TlbMissPenalty;
  }
  PageTable &Pt = IsCpu ? CpuPt : GpuPt;
  std::optional<Addr> Translated = Pt.translate(VAddr);
  if (!Translated) {
    // Demand-map: experiment setup maps ranges up front; stray addresses
    // (e.g. wrapped cursors just past an object) are mapped on demand.
    ++*MemDemandMaps;
    mapRange(Pu, alignDown(VAddr, Pt.pageBytes()), Pt.pageBytes());
    Translated = Pt.translate(VAddr);
    assert(Translated && "demand map failed");
  }
  Addr PAddr = *Translated;

  // 2. Address-space visibility (Section II-A): a PU referencing space
  // the model does not give it is a program error under that model.
  if (Policy.SpaceModel && !Policy.SpaceModel->canAccess(Pu, VAddr)) {
    Result.SpaceViolation = true;
    ++*MemSpaceViolations;
  }

  // 3. Shared-space policies (ownership, first touch).
  if (regionOf(VAddr) == MemRegion::Shared) {
    if (Policy.Ownership && !Policy.Ownership->checkAccess(Pu, VAddr)) {
      Result.OwnershipViolation = true;
      ++*MemOwnershipViolations;
    }
    if (Policy.FirstTouch && (!Policy.FaultOnlyGpu || !IsCpu)) {
      if (Policy.FirstTouch->touch(VAddr)) {
        Result.PageFault = true;
        ++*MemPagefaults;
        Latency += Policy.PageFaultLatency;
      }
    }
  }

  // Translation + policy work ends here; the rest of the walk is cache,
  // NoC, and DRAM time (memphase attribution).
  if (ProfileOn) {
    ProfT1 = profNowNs();
    Prof.TlbNs += ProfT1 - ProfT0;
    ProfDramNs = 0;
    ++Prof.Accesses;
  }
  auto Finish = [&](MemAccessResult R) {
    if (ProfileOn) {
      uint64_t WalkNs = profNowNs() - ProfT1;
      Prof.DramNs += ProfDramNs;
      Prof.CacheNs += WalkNs > ProfDramNs ? WalkNs - ProfDramNs : 0;
    }
    if (AccessLog) {
      uint8_t Flags = 0;
      if (R.TlbMiss)
        Flags |= MemAccessEcho::FlagTlbMiss;
      if (R.PageFault)
        Flags |= MemAccessEcho::FlagPageFault;
      if (R.CoherenceRemote)
        Flags |= MemAccessEcho::FlagCoherenceRemote;
      if (IsWrite)
        Flags |= MemAccessEcho::FlagWrite;
      AccessLog->push_back({VAddr, R.Latency, uint8_t(R.Level), Flags});
    }
    return R;
  };

  // 4. Private hierarchy.
  Cache &L1 = IsCpu ? *CpuL1 : *GpuL1;
  Addr Line = alignDown(PAddr, CacheLineBytes);

  // Coherence check happens before the private lookup so a stale local
  // copy is refreshed/invalidated correctly.
  if (Config.HwCoherence && regionOf(VAddr) == MemRegion::Shared &&
      (!Policy.HybridDomains || Policy.HybridDomains->consult(VAddr))) {
    Cycle Extra = 0;
    Result.CoherenceRemote = applyCoherence(Pu, Line, IsWrite, Extra);
    Latency += IsCpu ? Extra : convertCycles(PuKind::Cpu, PuKind::Gpu, Extra);
  }

  // Warm tier: functional contents only, nominal latency, no timing
  // state below this point (gem5 atomic analogue).
  if (MFMode == MemFastMode::Warm) {
    Result.Latency = Latency;
    return Finish(warmAccess(Pu, Line, IsWrite, ExplicitHint, Result));
  }

  CacheAccessResult L1Result = L1.access(Line, IsWrite);
  Latency += L1.config().HitLatency;
  if (L1Result.Hit) {
    Result.Level = HitLevel::L1;
    Result.Latency = Latency;
    return Finish(Result);
  }
  if (L1Result.WroteBack) {
    if (IsCpu)
      CpuL2->access(L1Result.VictimAddr, /*IsWrite=*/true);
    else
      ++*MemGpuL1Writebacks;
  }

  if (IsCpu) {
    CacheAccessResult L2Result = CpuL2->access(Line, IsWrite);
    Latency += CpuL2->config().HitLatency;

    // The L2 stream prefetcher trains on the L2 access stream and fills
    // future lines directly into the L2 (fill time is hidden; the win is
    // the later hit, the cost shows up as DRAM traffic).
    if (Config.EnableL2Prefetch) {
      for (Addr PrefetchLine : Prefetcher.onAccess(Line)) {
        if (CpuL2->probe(PrefetchLine))
          continue;
        ++*MemPrefetchFills;
        CacheAccessResult Fill = CpuL2->access(PrefetchLine, false);
        if (Fill.WroteBack) {
          CpuDram->enqueue(Fill.VictimAddr, /*IsWrite=*/true);
          ++*DramCpuWritebacks;
        }
        CpuDram->enqueue(PrefetchLine, /*IsWrite=*/false);
        ++*DramCpuPrefetchReads;
      }
    }

    if (L2Result.Hit) {
      // Prefetch fills above may have posted background traffic even on
      // an L2 hit; drain it here so it is neither left to accumulate nor
      // mischarged to a later transfer. CPU accesses run in the uncore
      // clock already.
      drainBackground(NowPu + Latency);
      Result.Level = HitLevel::L2;
      Result.Latency = Latency;
      return Finish(Result);
    }
    if (L2Result.WroteBack) {
      CpuDram->enqueue(L2Result.VictimAddr, /*IsWrite=*/true);
      ++*DramCpuWritebacks;
    }
  }

  // 5. Uncore (CPU clock domain).
  Cycle NowCpu = IsCpu ? NowPu + Latency
                       : convertCycles(PuKind::Gpu, PuKind::Cpu,
                                       NowPu + Latency);
  Cycle DoneCpu =
      uncoreAccess(Pu, Line, IsWrite, NowCpu, ExplicitHint, Result.Level);
  Cycle UncoreCpuCycles = DoneCpu > NowCpu ? DoneCpu - NowCpu : 0;
  Cycle UncorePu = IsCpu ? UncoreCpuCycles
                         : convertCycles(PuKind::Cpu, PuKind::Gpu,
                                         UncoreCpuCycles);
  // Posted victim writebacks (L2/L3 evictions above) drain behind the
  // demand access on the uncore timeline.
  drainBackground(DoneCpu);

  // 6. MSHR merge/backpressure at the private-miss boundary. A merge may
  // not undercut this access's own accrued latency (TLB walk, fault).
  MshrFile &Mshr = IsCpu ? CpuMshr : GpuMshr;
  MshrDecision Decision = Mshr.onMiss(Line, NowPu, NowPu + Latency + UncorePu,
                                      /*MinReady=*/NowPu + Latency);
  Cycle Ready = Decision.ReadyCycle;
  Result.Latency = Ready > NowPu ? Ready - NowPu : Latency + UncorePu;
  if (Decision.Merged)
    ++*MemMshrMerges;
  return Finish(Result);
}

MemAccessResult MemorySystem::warmAccess(PuKind Pu, Addr Line, bool IsWrite,
                                         bool ExplicitHint,
                                         MemAccessResult Result) {
  // Functional contents warming: fill every level the access would
  // touch, charge the nominal sum of hit latencies, and leave the
  // MSHR/NoC/DRAM timing state untouched. Victim writebacks are dropped
  // — warm mode moves no data, only presence state.
  const bool IsCpu = Pu == PuKind::Cpu;
  ++*MFCounters.WarmAccesses;
  Cache &L1 = IsCpu ? *CpuL1 : *GpuL1;
  Cycle Latency = Result.Latency + L1.config().HitLatency;
  CacheAccessResult L1R = L1.access(Line, IsWrite);
  Result.Level = HitLevel::L1;
  if (!L1R.Hit) {
    if (IsCpu) {
      CacheAccessResult L2R = CpuL2->access(Line, IsWrite);
      Latency += CpuL2->config().HitLatency;
      Result.Level = HitLevel::L2;
      if (!L2R.Hit) {
        if (Config.EnableL3) {
          CacheAccessResult L3R = L3->access(Line, IsWrite, ExplicitHint);
          Latency += L3->config().HitLatency;
          Result.Level = L3R.Hit ? HitLevel::L3 : HitLevel::Dram;
        } else {
          Result.Level = HitLevel::Dram;
        }
      }
    } else if (Config.GpuSharesL3 && Config.EnableL3) {
      CacheAccessResult L3R = L3->access(Line, IsWrite, ExplicitHint);
      Latency += L3->config().HitLatency;
      Result.Level = L3R.Hit ? HitLevel::L3 : HitLevel::Dram;
    } else {
      Result.Level = HitLevel::Dram;
    }
  }
  Result.Latency = Latency;
  return Result;
}

Cycle MemorySystem::scratchpadAccess(Addr Offset, uint32_t Bytes,
                                     bool IsWrite) {
  return Smem.access(Offset, Bytes, IsWrite);
}

Cycle MemorySystem::scratchpadWarpAccess(Addr Offset, uint32_t BytesPerLane,
                                         unsigned Lanes,
                                         uint32_t StrideBytes,
                                         bool IsWrite) {
  return Smem.warpAccess(Offset, BytesPerLane, Lanes, StrideBytes, IsWrite);
}

Cycle MemorySystem::pushToShared(PuKind Pu, Addr VBase, uint64_t Bytes,
                                 Cycle NowPu) {
  if (Bytes == 0)
    return 0;
  PageTable &Pt = Pu == PuKind::Cpu ? CpuPt : GpuPt;
  unsigned SourceStop = Pu == PuKind::Cpu ? ring::CpuStop : ring::GpuStop;
  uint64_t Lines = ceilDiv(Bytes, CacheLineBytes);
  Stats.increment("mem.push_ops");
  Stats.increment("mem.push_lines", Lines);

  // One NoC transit to start the stream, then pipelined per-line fills.
  Cycle CpuCost = Noc->uncontendedLatency(SourceStop, ring::L3Tile0);
  for (uint64_t I = 0; I != Lines; ++I) {
    Addr VAddr = VBase + I * CacheLineBytes;
    std::optional<Addr> PAddr = Pt.translate(VAddr);
    if (!PAddr) {
      mapRange(Pu, alignDown(VAddr, Pt.pageBytes()), Pt.pageBytes());
      PAddr = Pt.translate(VAddr);
    }
    CacheAccessResult Fill =
        L3->access(alignDown(*PAddr, CacheLineBytes), /*IsWrite=*/false,
                   /*MarkExplicit=*/true);
    if (Fill.WroteBack) {
      // The staged fill evicted a dirty line: that victim writeback is
      // real DRAM traffic, same as every other L3-fill path.
      CpuDram->enqueue(Fill.VictimAddr, /*IsWrite=*/true);
      ++*DramCpuWritebacks;
    }
    CpuCost += 2; // Pipelined fill occupancy per line.
  }
  Cycle NowCpu = Pu == PuKind::Cpu
                     ? NowPu
                     : convertCycles(PuKind::Gpu, PuKind::Cpu, NowPu);
  drainBackground(NowCpu + CpuCost);
  return Pu == PuKind::Cpu
             ? CpuCost
             : convertCycles(PuKind::Cpu, PuKind::Gpu, CpuCost);
}

Cycle MemorySystem::remapRange(PuKind Pu, Addr OldBase, Addr NewBase,
                               uint64_t Bytes, Cycle RemapCyclesPerPage) {
  if (Bytes == 0)
    return 0;
  PageTable &Pt = Pu == PuKind::Cpu ? CpuPt : GpuPt;
  Pt.unmapRange(OldBase, Bytes);
  mapRange(Pu, NewBase, Bytes);
  tlb(Pu).flush();
  uint64_t Pages = ceilDiv(Bytes, Pt.pageBytes());
  Stats.increment("mem.remap_pages", Pages);
  // Per-page table update plus a fixed TLB-shootdown cost.
  return Pages * RemapCyclesPerPage + Config.TlbMissPenalty;
}

uint64_t MemorySystem::flushPrivate(PuKind Pu) {
  uint64_t Writebacks = 0;
  auto Count = [&Writebacks](Addr) { ++Writebacks; };
  if (Pu == PuKind::Cpu) {
    CpuL1->flushAll(Count);
    CpuL2->flushAll(Count);
  } else {
    GpuL1->flushAll(Count);
  }
  Stats.increment("mem.flush_writebacks", Writebacks);
  return Writebacks;
}
