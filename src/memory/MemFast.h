//===- memory/MemFast.h - Selective-fidelity memory fast path ---*- C++ -*-===//
///
/// \file
/// The memory-phase fast path (DESIGN.md §11): fidelity tiers for the
/// memory hierarchy, selected by HETSIM_MEMFAST.
///
///   exact (default) — steady-state fold. When a Pattern-block body's
///     access stream and the whole memory-system state (caches, TLBs,
///     MSHRs, DRAM banks, NoC ports, directory, counters) reach a
///     verified per-period fixed point — identical access-response
///     signatures two windows running and every stateful cycle advancing
///     by the same per-window delta — the remaining repetitions are
///     applied in closed form. Any precondition miss (stride change,
///     page/set boundary crossing, MSHR churn, fault, coherence
///     transfer, DRAM/NoC interference) falls back to detailed mode
///     instantly; results are bit-identical either way.
///   warm — functional-only contents warming (gem5 atomic analogue):
///     cache/TLB/page-table contents update, but no MSHR/NoC/DRAM
///     timing. Latency is the nominal sum of hit latencies.
///   sampled — windowed time-sampling of generator blocks with a
///     reported error bound; never used by goldens.
///
/// HETSIM_MEMFAST=0 (like HETSIM_FASTPATH=0) is the bit-exact oracle.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_MEMFAST_H
#define HETSIM_MEMORY_MEMFAST_H

#include "cache/Cache.h"
#include "cache/Directory.h"
#include "cache/Mshr.h"
#include "common/Types.h"
#include "dram/Dram.h"
#include "interconnect/Interconnect.h"
#include "memory/Tlb.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hetsim {

class MemorySystem;

/// Fidelity tier of the memory model.
enum class MemFastMode : uint8_t {
  Off = 0,     ///< Detailed per-access simulation (the oracle).
  Exact = 1,   ///< Detailed + verified steady-state folding (default).
  Warm = 2,    ///< Functional contents warming, nominal latencies.
  Sampled = 3, ///< Windowed time-sampling with reported error bounds.
};

/// Resolves HETSIM_MEMFAST ("0", "1"/unset, "warm", "sampled"). Cached
/// after the first call; tests override via setMemFastForTesting().
MemFastMode memFastMode();

/// Test hook: forces the mode (0..3), or re-reads the environment (-1).
void setMemFastForTesting(int Mode);

/// Windows skipped per measured window in sampled mode
/// (HETSIM_MEMFAST_SKIP, default 30).
unsigned memFastSampleSkip();

/// Why a memory-phase fold attempt fell back to detailed simulation.
/// One counter per reason ("memfast.fallback.<name>") makes the fall-back
/// preconditions observable.
enum class MemFoldReason : uint8_t {
  None = 0,
  PipelineDrift,     ///< Core pipeline state not at a fixed point.
  StrideChange,      ///< Access addresses did not repeat the stride.
  PageBoundary,      ///< TLB-miss pattern shifted across a page boundary.
  SignatureMismatch, ///< Latency/level signature differed between windows.
  Fault,             ///< Page fault inside an observation window.
  CoherenceTransfer, ///< Directory state changed (remote transfer).
  CacheDrift,        ///< A cache was not at a per-period fixed point.
  TlbDrift,          ///< A TLB was not at a per-period fixed point.
  MshrDrift,         ///< MSHR entries churned (alloc/retire/full-stall).
  DramActive,        ///< DRAM queue/bank/row state not steady (co-run).
  NocDrift,          ///< NoC injection ports not steady.
  UncoreCrossing,    ///< GPU window touched the cross-clock uncore.
  PrefetcherDrift,   ///< Stream prefetcher activity inside the window.
  PageTableGrowth,   ///< Demand mapping grew a page table.
  StatsDrift,        ///< Registry counters/histograms not steady.
};

constexpr unsigned NumMemFoldReasons = 16;

/// Stable lowercase name for counters ("stride_change", ...).
const char *memFoldReasonName(MemFoldReason Reason);

/// One access as echoed into a fold-observation window log.
struct MemAccessEcho {
  Addr VAddr = 0;
  Cycle Latency = 0;
  uint8_t Level = 0; ///< HitLevel as an integer.
  uint8_t Flags = 0;

  static constexpr uint8_t FlagTlbMiss = 1;
  static constexpr uint8_t FlagPageFault = 2;
  static constexpr uint8_t FlagCoherenceRemote = 4;
  static constexpr uint8_t FlagWrite = 8;

  bool operator==(const MemAccessEcho &O) const {
    return VAddr == O.VAddr && Latency == O.Latency && Level == O.Level &&
           Flags == O.Flags;
  }
  bool operator!=(const MemAccessEcho &O) const { return !(*this == O); }
};

/// Streaming stride classifier over an address sequence. The fold
/// verifier uses it to name the precondition that broke (stride change
/// vs page-boundary crossing); it is also the unit-testable core of the
/// steady-state detector.
class SteadyStreamDetector {
public:
  explicit SteadyStreamDetector(uint64_t PageBytes = SmallPageBytes,
                                unsigned MinRun = 3)
      : PageBytes(PageBytes), MinRun(MinRun) {}

  void observe(Addr A);
  void reset();

  /// True once MinRun consecutive equal deltas have been seen.
  bool steady() const { return Run >= MinRun; }
  int64_t stride() const { return LastDelta; }
  /// True if the latest observe() broke an established steady stride.
  bool strideChanged() const { return BrokeStride; }
  /// True if the latest observe() crossed a page boundary.
  bool crossedPage() const { return CrossedPage; }
  uint64_t observations() const { return Count; }

private:
  uint64_t PageBytes;
  unsigned MinRun;
  Addr Last = 0;
  int64_t LastDelta = 0;
  unsigned Run = 0;
  uint64_t Count = 0;
  bool BrokeStride = false;
  bool CrossedPage = false;
};

//===----------------------------------------------------------------------===//
// Component fixed-point checks (exported for unit tests).
//
// Common contract: S1/S2/S3 are snapshots at three consecutive window
// boundaries; the check accepts iff the window-to-window transition is a
// uniform translation that stays valid for every future window. Cycle
// fields may advance by the pipeline delta \p D per window, or sit
// constant at/below \p Floor (the smallest cycle any future access can
// observe), which keeps them behaviorally inert forever.
//===----------------------------------------------------------------------===//

bool checkCacheFold(const Cache::FoldSnap &S1, const Cache::FoldSnap &S2,
                    const Cache::FoldSnap &S3);

bool checkTlbFold(const Tlb::FoldSnap &S1, const Tlb::FoldSnap &S2,
                  const Tlb::FoldSnap &S3);

bool checkMshrFold(const MshrFile::FoldSnap &S1,
                   const MshrFile::FoldSnap &S2,
                   const MshrFile::FoldSnap &S3, Cycle D, Cycle Floor);

bool checkDramFold(const DramSystem::FoldSnap &S1,
                   const DramSystem::FoldSnap &S2,
                   const DramSystem::FoldSnap &S3, Cycle D);

bool checkNocFold(const std::vector<Cycle> &P1, const std::vector<Cycle> &P2,
                  const std::vector<Cycle> &P3, const NocStats &N1,
                  const NocStats &N2, const NocStats &N3, Cycle D);

//===----------------------------------------------------------------------===//
// Whole-memory-system fold observer.
//===----------------------------------------------------------------------===//

/// Observes two consecutive candidate windows of a Pattern-block body:
/// snapshots the entire memory system at three boundaries, logs the two
/// windows' access responses, verifies the per-period fixed point, and
/// applies the closed-form extrapolation. Used by the CPU/GPU
/// runPatternBlock fold when the body touches global memory.
class MemFoldObserver {
public:
  MemFoldObserver(MemorySystem &Mem, PuKind Pu);
  ~MemFoldObserver();

  /// Captures system snapshot \p Which (0..2).
  void snapshot(unsigned Which);

  /// Routes access echoes into window log \p Which (0..1) until endLog().
  void beginLog(unsigned Which);
  void endLog();

  /// Verifies the fixed point. \p D is the verified per-window pipeline
  /// cycle delta (requester clock); \p FloorPu is the smallest requester
  /// cycle any future access can carry. Sets \p Reason on failure.
  bool check(Cycle D, Cycle FloorPu, MemFoldReason &Reason) const;

  /// Extrapolates \p Rem more windows over every component and counter.
  /// Only valid after check() accepted.
  void apply(uint64_t Rem);

  /// Responses of one verified window (for SegmentResult accounting).
  const std::vector<MemAccessEcho> &windowLog() const { return Logs[1]; }

private:
  struct SysSnap {
    Cache::FoldSnap CpuL1, CpuL2, GpuL1, L3;
    Tlb::FoldSnap CpuTlb, GpuTlb;
    MshrFile::FoldSnap CpuMshr, GpuMshr;
    DramSystem::FoldSnap CpuDram, GpuDram;
    bool HasGpuDram = false;
    std::vector<Cycle> NocPorts;
    NocStats Noc;
    Directory::FoldSnap Dir;
    uint64_t PrefetcherLookups = 0;
    size_t CpuPtPages = 0, GpuPtPages = 0;
    std::vector<std::pair<std::string, uint64_t>> Counters;
    std::vector<std::pair<std::string, uint64_t>> HistogramSums;
  };

  void capture(SysSnap &S) const;
  bool checkUncoreQuiescent(const SysSnap &A, const SysSnap &B) const;

  MemorySystem &Mem;
  PuKind Pu;
  SysSnap Snaps[3];
  std::vector<MemAccessEcho> Logs[2];
};

} // namespace hetsim

#endif // HETSIM_MEMORY_MEMFAST_H
