//===- memory/PageTable.cpp -----------------------------------------------===//

#include "memory/PageTable.h"

#include "common/Error.h"

#include <cassert>

using namespace hetsim;

Addr PhysicalMemory::allocate(uint64_t Bytes, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  uint64_t Base = alignUp(Cursor, Align);
  if (Base + Bytes > SizeBytes)
    fatalError(("physical memory exhausted: " + Name).c_str());
  Cursor = Base + Bytes;
  return Base;
}

PageTable::PageTable(PuKind OwningPu, uint64_t PageSize)
    : Owner(OwningPu), PageBytes(PageSize) {
  if (!isPowerOf2(PageSize) || PageSize < 512)
    fatalError("invalid page size");
}

void PageTable::mapRange(Addr VBase, uint64_t Bytes, PhysicalMemory &Device) {
  if (Bytes == 0)
    return;
  uint64_t FirstVpn = vpnOf(VBase);
  uint64_t LastVpn = vpnOf(VBase + Bytes - 1);
  for (uint64_t Vpn = FirstVpn; Vpn <= LastVpn; ++Vpn) {
    if (Map.count(Vpn))
      continue;
    Map[Vpn] = Device.allocate(PageBytes, PageBytes);
  }
}

std::optional<Addr> PageTable::translate(Addr VAddr) const {
  auto It = Map.find(vpnOf(VAddr));
  if (It == Map.end())
    return std::nullopt;
  return It->second + (VAddr & (PageBytes - 1));
}

bool PageTable::isMapped(Addr VAddr) const {
  return Map.count(vpnOf(VAddr)) != 0;
}

void PageTable::unmapRange(Addr VBase, uint64_t Bytes) {
  if (Bytes == 0)
    return;
  uint64_t FirstVpn = vpnOf(VBase);
  uint64_t LastVpn = vpnOf(VBase + Bytes - 1);
  for (uint64_t Vpn = FirstVpn; Vpn <= LastVpn; ++Vpn)
    Map.erase(Vpn);
}
