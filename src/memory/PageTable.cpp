//===- memory/PageTable.cpp -----------------------------------------------===//

#include "memory/PageTable.h"

#include "common/Error.h"

#include <cassert>

using namespace hetsim;

Addr PhysicalMemory::allocate(uint64_t Bytes, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  uint64_t Base = alignUp(Cursor, Align);
  if (Base + Bytes > SizeBytes)
    fatalError(("physical memory exhausted: " + Name).c_str());
  Cursor = Base + Bytes;
  return Base;
}

PageTable::PageTable(PuKind OwningPu, uint64_t PageSize)
    : Owner(OwningPu), PageBytes(PageSize) {
  if (!isPowerOf2(PageSize) || PageSize < 512)
    fatalError("invalid page size");
}

void PageTable::mapRange(Addr VBase, uint64_t Bytes, PhysicalMemory &Device) {
  if (Bytes == 0)
    return;
  uint64_t FirstVpn = vpnOf(VBase);
  uint64_t LastVpn = vpnOf(VBase + Bytes - 1);
  for (uint64_t Vpn = FirstVpn; Vpn <= LastVpn; ++Vpn) {
    if (Map.contains(Vpn))
      continue;
    Map[Vpn] = Device.allocate(PageBytes, PageBytes);
  }
}

bool PageTable::isMapped(Addr VAddr) const {
  return Map.contains(vpnOf(VAddr));
}

void PageTable::unmapRange(Addr VBase, uint64_t Bytes) {
  if (Bytes == 0)
    return;
  uint64_t FirstVpn = vpnOf(VBase);
  uint64_t LastVpn = vpnOf(VBase + Bytes - 1);
  for (uint64_t Vpn = FirstVpn; Vpn <= LastVpn; ++Vpn)
    Map.erase(Vpn);
}
