//===- memory/ConsistencyChecker.cpp --------------------------------------===//

#include "memory/ConsistencyChecker.h"

#include "common/Error.h"

#include <algorithm>
#include <map>

using namespace hetsim;

const char *hetsim::consistencyModelName(ConsistencyModel Model) {
  switch (Model) {
  case ConsistencyModel::Weak:
    return "weak consistency";
  case ConsistencyModel::CentralizedRelease:
    return "centralized release consistency";
  case ConsistencyModel::Strong:
    return "strong consistency";
  }
  hetsim_unreachable("invalid consistency model");
}

namespace {

/// A two-entry vector clock: how many events of each PU are known to
/// happen before this point.
struct VectorClock {
  uint64_t Seq[NumPuKinds] = {0, 0};

  void join(const VectorClock &Other) {
    for (unsigned I = 0; I != NumPuKinds; ++I)
      Seq[I] = std::max(Seq[I], Other.Seq[I]);
  }

  /// True if an event with per-PU sequence number \p EventSeq on \p Pu is
  /// covered by this clock.
  bool covers(PuKind Pu, uint64_t EventSeq) const {
    return Seq[puIndex(Pu)] >= EventSeq;
  }
};

bool isAccess(SyncEventKind Kind) {
  return Kind == SyncEventKind::Read || Kind == SyncEventKind::Write;
}

} // namespace

std::vector<ConsistencyViolation> ConsistencyChecker::check() const {
  std::vector<ConsistencyViolation> Violations;
  if (Model == ConsistencyModel::Strong)
    return Violations; // Every access is globally ordered: no undefined
                       // outcomes to report.

  // Pass 1: assign each event a vector clock under the model's
  // synchronization edges (program order + release->acquire per object +
  // kernel launch/return + barriers).
  const size_t N = History.size();
  std::vector<VectorClock> Clocks(N);
  std::vector<uint64_t> SeqOf(N, 0);

  VectorClock Current[NumPuKinds];
  uint64_t NextSeq[NumPuKinds] = {0, 0};
  std::map<std::string, VectorClock> LastRelease;
  VectorClock LaunchClock;   // Latest CPU->GPU control transfer.
  VectorClock ReturnClock;   // Latest GPU->CPU control transfer.
  VectorClock BarrierClock;  // Latest global barrier.
  bool SawLaunch = false, SawReturn = false, SawBarrier = false;

  for (size_t I = 0; I != N; ++I) {
    const SyncEvent &E = History[I];
    unsigned P = puIndex(E.Pu);
    VectorClock C = Current[P];

    // Incoming edges.
    if (E.Kind == SyncEventKind::Acquire) {
      auto It = LastRelease.find(E.Object);
      if (It != LastRelease.end())
        C.join(It->second);
    }
    if (E.Pu == PuKind::Gpu && SawLaunch)
      C.join(LaunchClock);
    if (E.Pu == PuKind::Cpu && SawReturn)
      C.join(ReturnClock);
    if (SawBarrier)
      C.join(BarrierClock);

    // This event's position.
    uint64_t Seq = ++NextSeq[P];
    C.Seq[P] = Seq;
    Clocks[I] = C;
    SeqOf[I] = Seq;
    Current[P] = C;

    // Outgoing edges.
    switch (E.Kind) {
    case SyncEventKind::Release:
      LastRelease[E.Object] = C;
      break;
    case SyncEventKind::KernelLaunch:
      LaunchClock = C;
      SawLaunch = true;
      break;
    case SyncEventKind::KernelReturn:
      ReturnClock = C;
      SawReturn = true;
      break;
    case SyncEventKind::Barrier: {
      // A barrier synchronizes both sides: it publishes everything both
      // PUs have done so far.
      VectorClock Joined = Current[0];
      Joined.join(Current[1]);
      BarrierClock = Joined;
      SawBarrier = true;
      Current[0].join(Joined);
      Current[1].join(Joined);
      break;
    }
    default:
      break;
    }
  }

  // Pass 2: report conflicting cross-PU access pairs with no
  // happens-before edge.
  std::map<std::string, std::vector<size_t>> AccessesByObject;
  for (size_t I = 0; I != N; ++I)
    if (isAccess(History[I].Kind))
      AccessesByObject[History[I].Object].push_back(I);

  for (const auto &KV : AccessesByObject) {
    const std::vector<size_t> &Accesses = KV.second;
    for (size_t A = 0; A != Accesses.size(); ++A) {
      for (size_t B = A + 1; B != Accesses.size(); ++B) {
        size_t I = Accesses[A], J = Accesses[B];
        const SyncEvent &First = History[I];
        const SyncEvent &Second = History[J];
        if (First.Pu == Second.Pu)
          continue; // Program order.
        if (First.Kind != SyncEventKind::Write &&
            Second.Kind != SyncEventKind::Write)
          continue; // Read-read never conflicts.
        if (Clocks[J].covers(First.Pu, SeqOf[I]))
          continue; // Ordered.
        ConsistencyViolation V;
        V.EarlierIndex = I;
        V.LaterIndex = J;
        V.Object = KV.first;
        V.Description = std::string(puKindName(First.Pu)) +
                        (First.Kind == SyncEventKind::Write ? " write"
                                                            : " read") +
                        " races with " + puKindName(Second.Pu) +
                        (Second.Kind == SyncEventKind::Write ? " write"
                                                             : " read") +
                        " of '" + KV.first + "'";
        Violations.push_back(std::move(V));
      }
    }
  }
  return Violations;
}
