//===- memory/Tlb.h - Translation lookaside buffer --------------*- C++ -*-===//
///
/// \file
/// A set-associative TLB. Section II-A1 notes that different page-table
/// formats per PU complicate TLB and MMU design; here each PU's TLB uses
/// its own page size, and larger GPU pages directly reduce GPU TLB misses.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_TLB_H
#define HETSIM_MEMORY_TLB_H

#include "common/Types.h"

#include <vector>

namespace hetsim {

/// TLB statistics.
struct TlbStats {
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  double hitRate() const {
    return Lookups == 0 ? 0.0 : double(Hits) / double(Lookups);
  }
};

/// A set-associative LRU TLB over virtual page numbers.
class Tlb {
public:
  Tlb(unsigned Entries, unsigned Ways, uint64_t PageBytes);

  /// Looks \p VAddr up, filling on a miss; returns true on a hit.
  bool lookup(Addr VAddr);

  /// Invalidates all entries (e.g. after remapping).
  void flush();

  const TlbStats &stats() const { return Stats; }
  uint64_t pageBytes() const { return PageBytes; }

  /// Full-state snapshot for the memory-phase fold verifier (DESIGN.md
  /// §11): per-entry VPN/stamp/valid, the stamp clock, and counters.
  struct FoldSnap {
    struct EntrySnap {
      uint64_t Vpn = 0;
      uint64_t Stamp = 0;
      bool Valid = false;
    };
    std::vector<EntrySnap> Entries; // Sets x Ways, row-major.
    uint64_t NextStamp = 0;
    TlbStats Stats;
    unsigned Ways = 0;
  };

  FoldSnap foldSnapshot() const;

  /// Advances entry stamps, the stamp clock, and counters by Rem times
  /// their per-window delta (\p S3 minus \p S2).
  void applyFold(const FoldSnap &S2, const FoldSnap &S3, uint64_t Rem);

private:
  struct Entry {
    uint64_t Vpn = 0;
    uint64_t Stamp = 0;
    bool Valid = false;
  };

  unsigned NumSets;
  unsigned Ways;
  uint64_t PageBytes;
  std::vector<Entry> Entries;
  TlbStats Stats;
  uint64_t NextStamp = 1;
};

} // namespace hetsim

#endif // HETSIM_MEMORY_TLB_H
