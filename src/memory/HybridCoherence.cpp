//===- memory/HybridCoherence.cpp -----------------------------------------===//

#include "memory/HybridCoherence.h"

#include "common/Error.h"

using namespace hetsim;

const char *hetsim::coherenceDomainName(CoherenceDomain Domain) {
  switch (Domain) {
  case CoherenceDomain::Hardware:
    return "hardware";
  case CoherenceDomain::Software:
    return "software";
  }
  hetsim_unreachable("invalid coherence domain");
}

void HybridCoherenceMap::assign(Addr Base, uint64_t Bytes,
                                CoherenceDomain Domain) {
  if (Bytes == 0)
    return;
  Assignments.push_back({Base, Bytes, Domain});
}

CoherenceDomain HybridCoherenceMap::domainOf(Addr Address) const {
  // Later assignments override earlier ones: scan backwards.
  for (auto It = Assignments.rbegin(); It != Assignments.rend(); ++It)
    if (Address >= It->Base && Address < It->Base + It->Bytes)
      return It->Domain;
  return Default;
}

bool HybridCoherenceMap::consult(Addr Address) {
  if (domainOf(Address) == CoherenceDomain::Hardware) {
    ++Stats.HardwareLookups;
    return true;
  }
  ++Stats.SoftwareLookups;
  return false;
}

Cycle HybridCoherenceMap::transition(Addr Base, uint64_t Bytes,
                                     CoherenceDomain To,
                                     Cycle CyclesPerLine) {
  assign(Base, Bytes, To);
  uint64_t Lines = ceilDiv(Bytes, CacheLineBytes);
  ++Stats.Transitions;
  Stats.LinesTransitioned += Lines;
  return Lines * CyclesPerLine;
}
