//===- memory/MemFast.cpp -------------------------------------------------===//

#include "memory/MemFast.h"

#include "interconnect/Interconnect.h"
#include "memory/MemorySystem.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// Mode selection.
//===----------------------------------------------------------------------===//

static std::atomic<int> MemFastOverride{-1};

static MemFastMode readMemFastEnv() {
  const char *Env = std::getenv("HETSIM_MEMFAST");
  if (!Env || !*Env)
    return MemFastMode::Exact;
  if (std::strcmp(Env, "0") == 0 || std::strcmp(Env, "off") == 0)
    return MemFastMode::Off;
  if (std::strcmp(Env, "warm") == 0)
    return MemFastMode::Warm;
  if (std::strcmp(Env, "sampled") == 0 || std::strcmp(Env, "sample") == 0)
    return MemFastMode::Sampled;
  return MemFastMode::Exact;
}

MemFastMode hetsim::memFastMode() {
  int Override = MemFastOverride.load(std::memory_order_relaxed);
  if (Override >= 0)
    return MemFastMode(Override);
  return readMemFastEnv();
}

void hetsim::setMemFastForTesting(int Mode) {
  MemFastOverride.store(Mode > 3 ? 3 : Mode, std::memory_order_relaxed);
}

unsigned hetsim::memFastSampleSkip() {
  static unsigned Cached = [] {
    const char *Env = std::getenv("HETSIM_MEMFAST_SKIP");
    if (!Env || !*Env)
      return 30u;
    long V = std::atol(Env);
    if (V < 1)
      V = 1;
    if (V > 10000)
      V = 10000;
    return unsigned(V);
  }();
  return Cached;
}

const char *hetsim::memFoldReasonName(MemFoldReason Reason) {
  switch (Reason) {
  case MemFoldReason::None:
    return "none";
  case MemFoldReason::PipelineDrift:
    return "pipeline_drift";
  case MemFoldReason::StrideChange:
    return "stride_change";
  case MemFoldReason::PageBoundary:
    return "page_boundary";
  case MemFoldReason::SignatureMismatch:
    return "signature_mismatch";
  case MemFoldReason::Fault:
    return "fault";
  case MemFoldReason::CoherenceTransfer:
    return "coherence_transfer";
  case MemFoldReason::CacheDrift:
    return "cache_drift";
  case MemFoldReason::TlbDrift:
    return "tlb_drift";
  case MemFoldReason::MshrDrift:
    return "mshr_drift";
  case MemFoldReason::DramActive:
    return "dram_active";
  case MemFoldReason::NocDrift:
    return "noc_drift";
  case MemFoldReason::UncoreCrossing:
    return "uncore_crossing";
  case MemFoldReason::PrefetcherDrift:
    return "prefetcher_drift";
  case MemFoldReason::PageTableGrowth:
    return "page_table_growth";
  case MemFoldReason::StatsDrift:
    return "stats_drift";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// SteadyStreamDetector.
//===----------------------------------------------------------------------===//

void SteadyStreamDetector::observe(Addr A) {
  BrokeStride = false;
  CrossedPage = false;
  if (Count > 0) {
    int64_t Delta = int64_t(A) - int64_t(Last);
    CrossedPage = (A / PageBytes) != (Last / PageBytes);
    if (Count == 1) {
      LastDelta = Delta;
      Run = 1;
    } else if (Delta == LastDelta) {
      ++Run;
    } else {
      BrokeStride = Run >= MinRun;
      LastDelta = Delta;
      Run = 1;
    }
  }
  Last = A;
  ++Count;
}

void SteadyStreamDetector::reset() {
  Last = 0;
  LastDelta = 0;
  Run = 0;
  Count = 0;
  BrokeStride = false;
  CrossedPage = false;
}

//===----------------------------------------------------------------------===//
// Component fixed-point checks.
//===----------------------------------------------------------------------===//

namespace {

/// d(S2,S1) == d(S3,S2), evaluated without underflow on unsigned fields.
template <typename T> bool deltasEqual(T V1, T V2, T V3) {
  return V2 - V1 == V3 - V2 && V2 >= V1 && V3 >= V2;
}

bool cacheStatsDeltasEqual(const CacheStats &S1, const CacheStats &S2,
                           const CacheStats &S3) {
  return deltasEqual(S1.Accesses, S2.Accesses, S3.Accesses) &&
         deltasEqual(S1.Hits, S2.Hits, S3.Hits) &&
         deltasEqual(S1.Misses, S2.Misses, S3.Misses) &&
         deltasEqual(S1.Evictions, S2.Evictions, S3.Evictions) &&
         deltasEqual(S1.Writebacks, S2.Writebacks, S3.Writebacks) &&
         deltasEqual(S1.BypassedFills, S2.BypassedFills, S3.BypassedFills);
}

} // namespace

bool hetsim::checkCacheFold(const Cache::FoldSnap &S1,
                            const Cache::FoldSnap &S2,
                            const Cache::FoldSnap &S3) {
  const size_t N = S1.Lines.size();
  if (S2.Lines.size() != N || S3.Lines.size() != N)
    return false;
  // No replacement-RNG draws inside the window: random-replacement
  // activity has no per-period fixed point.
  if (S1.RngState != S2.RngState || S2.RngState != S3.RngState)
    return false;
  if (!deltasEqual(S1.NextStamp, S2.NextStamp, S3.NextStamp))
    return false;
  if (!cacheStatsDeltasEqual(S1.Stats, S2.Stats, S3.Stats))
    return false;
  const uint64_t DN = S2.NextStamp - S1.NextStamp;
  const uint64_t MissDelta = S2.Stats.Misses - S1.Stats.Misses;

  for (size_t I = 0; I != N; ++I) {
    const auto &L1 = S1.Lines[I], &L2 = S2.Lines[I], &L3 = S3.Lines[I];
    // Tag/state/dirty/explicit bits must sit at the fixed point exactly.
    if (L1.Tag != L2.Tag || L2.Tag != L3.Tag || L1.State != L2.State ||
        L2.State != L3.State || L1.Valid != L2.Valid ||
        L2.Valid != L3.Valid || L1.Dirty != L2.Dirty ||
        L2.Dirty != L3.Dirty || L1.Explicit != L2.Explicit ||
        L2.Explicit != L3.Explicit)
      return false;
    if (!deltasEqual(L1.LruStamp, L2.LruStamp, L3.LruStamp))
      return false;
    const uint64_t DL = L2.LruStamp - L1.LruStamp;
    if (DL != 0 && DL != DN)
      return false;
  }

  // When the window refills lines, replacement compares LRU stamps of
  // touched (advancing) and untouched (constant) lines. Those
  // comparisons flip as the advancing stamps grow past the constants,
  // so a two-window verification cannot certify a mixed set: reject any
  // set holding both a touched line and an untouched valid line.
  if (MissDelta != 0 && S1.Ways != 0) {
    for (size_t SetBase = 0; SetBase < N; SetBase += S1.Ways) {
      bool Touched = false, UntouchedValid = false;
      for (unsigned W = 0; W != S1.Ways; ++W) {
        const auto &L = S1.Lines[SetBase + W];
        uint64_t DL = S2.Lines[SetBase + W].LruStamp - L.LruStamp;
        if (DL != 0)
          Touched = true;
        else if (L.Valid)
          UntouchedValid = true;
      }
      if (Touched && UntouchedValid)
        return false;
    }
  }
  return true;
}

bool hetsim::checkTlbFold(const Tlb::FoldSnap &S1, const Tlb::FoldSnap &S2,
                          const Tlb::FoldSnap &S3) {
  const size_t N = S1.Entries.size();
  if (S2.Entries.size() != N || S3.Entries.size() != N)
    return false;
  if (!deltasEqual(S1.NextStamp, S2.NextStamp, S3.NextStamp))
    return false;
  if (!deltasEqual(S1.Stats.Lookups, S2.Stats.Lookups, S3.Stats.Lookups) ||
      !deltasEqual(S1.Stats.Hits, S2.Stats.Hits, S3.Stats.Hits) ||
      !deltasEqual(S1.Stats.Misses, S2.Stats.Misses, S3.Stats.Misses))
    return false;
  const uint64_t DN = S2.NextStamp - S1.NextStamp;
  const uint64_t MissDelta = S2.Stats.Misses - S1.Stats.Misses;

  for (size_t I = 0; I != N; ++I) {
    const auto &E1 = S1.Entries[I], &E2 = S2.Entries[I], &E3 = S3.Entries[I];
    if (E1.Vpn != E2.Vpn || E2.Vpn != E3.Vpn || E1.Valid != E2.Valid ||
        E2.Valid != E3.Valid)
      return false;
    if (!deltasEqual(E1.Stamp, E2.Stamp, E3.Stamp))
      return false;
    const uint64_t DS = E2.Stamp - E1.Stamp;
    if (DS != 0 && DS != DN)
      return false;
  }

  // Same mixed-set hazard as caches: miss fills pick the LRU way.
  if (MissDelta != 0 && S1.Ways != 0) {
    for (size_t SetBase = 0; SetBase < N; SetBase += S1.Ways) {
      bool Touched = false, UntouchedValid = false;
      for (unsigned W = 0; W != S1.Ways; ++W) {
        const auto &E = S1.Entries[SetBase + W];
        uint64_t DS = S2.Entries[SetBase + W].Stamp - E.Stamp;
        if (DS != 0)
          Touched = true;
        else if (E.Valid)
          UntouchedValid = true;
      }
      if (Touched && UntouchedValid)
        return false;
    }
  }
  return true;
}

bool hetsim::checkMshrFold(const MshrFile::FoldSnap &S1,
                           const MshrFile::FoldSnap &S2,
                           const MshrFile::FoldSnap &S3, Cycle D,
                           Cycle Floor) {
  const size_t N = S1.Entries.size();
  if (S2.Entries.size() != N || S3.Entries.size() != N)
    return false;
  if (!deltasEqual(S1.Merged, S2.Merged, S3.Merged) ||
      !deltasEqual(S1.FullStalls, S2.FullStalls, S3.FullStalls))
    return false;
  for (size_t I = 0; I != N; ++I) {
    if (S1.Entries[I].first != S2.Entries[I].first ||
        S2.Entries[I].first != S3.Entries[I].first)
      return false;
    Cycle C1 = S1.Entries[I].second, C2 = S2.Entries[I].second,
          C3 = S3.Entries[I].second;
    if (!deltasEqual(C1, C2, C3))
      return false;
    Cycle DC = C2 - C1;
    // Moving with the pipeline, or already expired (an entry whose
    // completion cycle stays at/below every future access's Now is
    // behaviorally dead: it can never merge a future miss).
    if (DC != D && !(DC == 0 && C1 <= Floor))
      return false;
  }
  return true;
}

bool hetsim::checkDramFold(const DramSystem::FoldSnap &S1,
                           const DramSystem::FoldSnap &S2,
                           const DramSystem::FoldSnap &S3, Cycle D) {
  // The batch queue must be empty at every boundary, with no batch
  // drains inside the window: drains fire observability hooks with
  // absolute timestamps that cannot be extrapolated.
  if (S1.Queued != 0 || S2.Queued != 0 || S3.Queued != 0)
    return false;
  if (S1.Stats.BatchDrains != S3.Stats.BatchDrains ||
      S1.Stats.BatchedRequests != S3.Stats.BatchedRequests ||
      S1.Stats.PeakQueueDepth != S3.Stats.PeakQueueDepth)
    return false;
  if (!deltasEqual(S1.Stats.Reads, S2.Stats.Reads, S3.Stats.Reads) ||
      !deltasEqual(S1.Stats.Writes, S2.Stats.Writes, S3.Stats.Writes) ||
      !deltasEqual(S1.Stats.RowHits, S2.Stats.RowHits, S3.Stats.RowHits) ||
      !deltasEqual(S1.Stats.RowMisses, S2.Stats.RowMisses,
                   S3.Stats.RowMisses) ||
      !deltasEqual(S1.Stats.BytesTransferred, S2.Stats.BytesTransferred,
                   S3.Stats.BytesTransferred))
    return false;
  for (size_t I = 0; I != S1.OpenRows.size(); ++I) {
    if (S1.OpenRows[I] != S2.OpenRows[I] || S2.OpenRows[I] != S3.OpenRows[I])
      return false;
    Cycle R1 = S1.ReadyAt[I], R2 = S2.ReadyAt[I], R3 = S3.ReadyAt[I];
    if (!deltasEqual(R1, R2, R3))
      return false;
    Cycle DR = R2 - R1;
    if (DR != 0 && DR != D)
      return false;
  }
  for (size_t I = 0; I != S1.BusFree.size(); ++I) {
    Cycle B1 = S1.BusFree[I], B2 = S2.BusFree[I], B3 = S3.BusFree[I];
    if (!deltasEqual(B1, B2, B3))
      return false;
    Cycle DB = B2 - B1;
    if (DB != 0 && DB != D)
      return false;
  }
  return true;
}

bool hetsim::checkNocFold(const std::vector<Cycle> &P1,
                          const std::vector<Cycle> &P2,
                          const std::vector<Cycle> &P3, const NocStats &N1,
                          const NocStats &N2, const NocStats &N3, Cycle D) {
  if (P1.size() != P2.size() || P2.size() != P3.size())
    return false;
  if (!deltasEqual(N1.Messages, N2.Messages, N3.Messages) ||
      !deltasEqual(N1.TotalHops, N2.TotalHops, N3.TotalHops) ||
      !deltasEqual(N1.ContentionCycles, N2.ContentionCycles,
                   N3.ContentionCycles) ||
      !deltasEqual(N1.ContendedMessages, N2.ContendedMessages,
                   N3.ContendedMessages))
    return false;
  for (size_t I = 0; I != P1.size(); ++I) {
    if (!deltasEqual(P1[I], P2[I], P3[I]))
      return false;
    Cycle DP = P2[I] - P1[I];
    if (DP != 0 && DP != D)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// MemFoldObserver.
//===----------------------------------------------------------------------===//

MemFoldObserver::MemFoldObserver(MemorySystem &M, PuKind P) : Mem(M), Pu(P) {}

MemFoldObserver::~MemFoldObserver() { Mem.setAccessLog(nullptr); }

void MemFoldObserver::capture(SysSnap &S) const {
  S.CpuL1 = Mem.cpuL1().foldSnapshot();
  S.CpuL2 = Mem.cpuL2().foldSnapshot();
  S.GpuL1 = Mem.gpuL1().foldSnapshot();
  S.L3 = Mem.l3().foldSnapshot();
  S.CpuTlb = Mem.tlb(PuKind::Cpu).foldSnapshot();
  S.GpuTlb = Mem.tlb(PuKind::Gpu).foldSnapshot();
  S.CpuMshr = Mem.mshr(PuKind::Cpu).foldSnapshot();
  S.GpuMshr = Mem.mshr(PuKind::Gpu).foldSnapshot();
  S.CpuDram = Mem.cpuDram().foldSnapshot();
  S.HasGpuDram = Mem.hasSeparateGpuDram();
  if (S.HasGpuDram)
    S.GpuDram = Mem.gpuDram().foldSnapshot();
  S.NocPorts = Mem.noc().foldPorts();
  S.Noc = Mem.noc().stats();
  S.Dir = Mem.directory().foldSnapshot();
  S.PrefetcherLookups = Mem.prefetcher().stats().Lookups;
  S.CpuPtPages = Mem.pageTable(PuKind::Cpu).mappedPages();
  S.GpuPtPages = Mem.pageTable(PuKind::Gpu).mappedPages();

  S.Counters.clear();
  for (const std::string &Name : Mem.stats().counterNames()) {
    if (Name.compare(0, 8, "memfast.") == 0)
      continue; // Meta-counters describe the fold itself.
    S.Counters.emplace_back(Name, Mem.stats().counter(Name));
  }
  S.HistogramSums.clear();
  for (const std::string &Name : Mem.stats().histogramNames()) {
    const StatHistogram &H = Mem.stats().histogram(Name);
    S.HistogramSums.emplace_back(Name, H.count() * 0x1000003ull + H.sum());
  }
}

void MemFoldObserver::snapshot(unsigned Which) { capture(Snaps[Which]); }

void MemFoldObserver::beginLog(unsigned Which) {
  Logs[Which].clear();
  Mem.setAccessLog(&Logs[Which]);
}

void MemFoldObserver::endLog() { Mem.setAccessLog(nullptr); }

namespace {

bool dramSnapsEqual(const DramSystem::FoldSnap &A,
                    const DramSystem::FoldSnap &B) {
  return A.OpenRows == B.OpenRows && A.ReadyAt == B.ReadyAt &&
         A.BusFree == B.BusFree && A.Queued == B.Queued &&
         A.Stats.Reads == B.Stats.Reads && A.Stats.Writes == B.Stats.Writes &&
         A.Stats.RowHits == B.Stats.RowHits &&
         A.Stats.RowMisses == B.Stats.RowMisses &&
         A.Stats.BytesTransferred == B.Stats.BytesTransferred &&
         A.Stats.BatchDrains == B.Stats.BatchDrains &&
         A.Stats.BatchedRequests == B.Stats.BatchedRequests &&
         A.Stats.PeakQueueDepth == B.Stats.PeakQueueDepth;
}

bool nocStatsEqual(const NocStats &A, const NocStats &B) {
  return A.Messages == B.Messages && A.TotalHops == B.TotalHops &&
         A.ContentionCycles == B.ContentionCycles &&
         A.ContendedMessages == B.ContendedMessages;
}

bool mshrSnapsEqual(const MshrFile::FoldSnap &A,
                    const MshrFile::FoldSnap &B) {
  return A.Entries == B.Entries && A.Merged == B.Merged &&
         A.FullStalls == B.FullStalls;
}

/// Names the precondition that made the two window logs differ.
MemFoldReason classifyLogMismatch(const std::vector<MemAccessEcho> &L0,
                                  const std::vector<MemAccessEcho> &L1) {
  for (const MemAccessEcho &E : L0)
    if (E.Flags & MemAccessEcho::FlagPageFault)
      return MemFoldReason::Fault;
  for (const MemAccessEcho &E : L1)
    if (E.Flags & MemAccessEcho::FlagPageFault)
      return MemFoldReason::Fault;
  if (L0.size() != L1.size())
    return MemFoldReason::SignatureMismatch;
  for (size_t I = 0; I != L0.size(); ++I) {
    if (L0[I].VAddr != L1[I].VAddr)
      return MemFoldReason::StrideChange;
    if ((L0[I].Flags & MemAccessEcho::FlagTlbMiss) !=
        (L1[I].Flags & MemAccessEcho::FlagTlbMiss))
      return MemFoldReason::PageBoundary;
  }
  return MemFoldReason::SignatureMismatch;
}

} // namespace

bool MemFoldObserver::checkUncoreQuiescent(const SysSnap &A,
                                           const SysSnap &B) const {
  if (!dramSnapsEqual(A.CpuDram, B.CpuDram))
    return false;
  if (A.HasGpuDram && !dramSnapsEqual(A.GpuDram, B.GpuDram))
    return false;
  if (A.NocPorts != B.NocPorts || !nocStatsEqual(A.Noc, B.Noc))
    return false;
  return true;
}

bool MemFoldObserver::check(Cycle D, Cycle FloorPu,
                            MemFoldReason &Reason) const {
  const SysSnap &S1 = Snaps[0], &S2 = Snaps[1], &S3 = Snaps[2];

  // 1. The two windows must produce elementwise-identical responses.
  if (Logs[0].size() != Logs[1].size() ||
      !std::equal(Logs[0].begin(), Logs[0].end(), Logs[1].begin())) {
    Reason = classifyLogMismatch(Logs[0], Logs[1]);
    return false;
  }
  // A fault inside the window can never repeat (first touch fires once
  // per page); identical logs carrying fault flags mean the fold would
  // replicate an unrepeatable event.
  for (const MemAccessEcho &E : Logs[1])
    if (E.Flags & MemAccessEcho::FlagPageFault) {
      Reason = MemFoldReason::Fault;
      return false;
    }

  // 2. Coherence: directory entry state must sit at the fixed point (a
  // remote transfer moves it and cannot repeat while only we run).
  if (!(S1.Dir.Entries == S2.Dir.Entries && S2.Dir.Entries == S3.Dir.Entries)) {
    Reason = MemFoldReason::CoherenceTransfer;
    return false;
  }
  if (!deltasEqual(S1.Dir.Stats.Lookups, S2.Dir.Stats.Lookups,
                   S3.Dir.Stats.Lookups) ||
      !deltasEqual(S1.Dir.Stats.RemoteInvalidations,
                   S2.Dir.Stats.RemoteInvalidations,
                   S3.Dir.Stats.RemoteInvalidations) ||
      !deltasEqual(S1.Dir.Stats.RemoteFetches, S2.Dir.Stats.RemoteFetches,
                   S3.Dir.Stats.RemoteFetches) ||
      !deltasEqual(S1.Dir.Stats.Messages, S2.Dir.Stats.Messages,
                   S3.Dir.Stats.Messages)) {
    Reason = MemFoldReason::CoherenceTransfer;
    return false;
  }

  // 3. GPU folds must not have crossed into the uncore: uncore state is
  // kept in CPU cycles and absolute-time clock conversion is not
  // translation-equivariant, so two consistent window deltas would not
  // guarantee a third. Warm mode never touches uncore timing, and GPU
  // L1-hit windows never leave the core, so quiescence is exactly the
  // sound condition.
  if (Pu == PuKind::Gpu) {
    if (!checkUncoreQuiescent(S1, S2) || !checkUncoreQuiescent(S2, S3)) {
      Reason = MemFoldReason::UncoreCrossing;
      return false;
    }
  } else {
    // CPU clock == uncore clock: pure integer cycle arithmetic, so
    // moving DRAM/NoC state folds exactly when it advances by D.
    if (!checkDramFold(S1.CpuDram, S2.CpuDram, S3.CpuDram, D) ||
        (S1.HasGpuDram &&
         (!dramSnapsEqual(S1.GpuDram, S2.GpuDram) ||
          !dramSnapsEqual(S2.GpuDram, S3.GpuDram)))) {
      Reason = MemFoldReason::DramActive;
      return false;
    }
    if (!checkNocFold(S1.NocPorts, S2.NocPorts, S3.NocPorts, S1.Noc, S2.Noc,
                      S3.Noc, D)) {
      Reason = MemFoldReason::NocDrift;
      return false;
    }
  }

  // 4. Caches.
  if (!checkCacheFold(S1.CpuL1, S2.CpuL1, S3.CpuL1) ||
      !checkCacheFold(S1.CpuL2, S2.CpuL2, S3.CpuL2) ||
      !checkCacheFold(S1.GpuL1, S2.GpuL1, S3.GpuL1) ||
      !checkCacheFold(S1.L3, S2.L3, S3.L3)) {
    Reason = MemFoldReason::CacheDrift;
    return false;
  }

  // 5. TLBs.
  if (!checkTlbFold(S1.CpuTlb, S2.CpuTlb, S3.CpuTlb) ||
      !checkTlbFold(S1.GpuTlb, S2.GpuTlb, S3.GpuTlb)) {
    Reason = MemFoldReason::TlbDrift;
    return false;
  }

  // 6. MSHRs: the requester's file folds under the translation rule;
  // the other PU's file is never consulted here and must be untouched.
  const bool CpuReq = Pu == PuKind::Cpu;
  const MshrFile::FoldSnap &R1 = CpuReq ? S1.CpuMshr : S1.GpuMshr;
  const MshrFile::FoldSnap &R2 = CpuReq ? S2.CpuMshr : S2.GpuMshr;
  const MshrFile::FoldSnap &R3 = CpuReq ? S3.CpuMshr : S3.GpuMshr;
  const MshrFile::FoldSnap &O1 = CpuReq ? S1.GpuMshr : S1.CpuMshr;
  const MshrFile::FoldSnap &O2 = CpuReq ? S2.GpuMshr : S2.CpuMshr;
  const MshrFile::FoldSnap &O3 = CpuReq ? S3.GpuMshr : S3.CpuMshr;
  if (!checkMshrFold(R1, R2, R3, D, FloorPu) || !mshrSnapsEqual(O1, O2) ||
      !mshrSnapsEqual(O2, O3)) {
    Reason = MemFoldReason::MshrDrift;
    return false;
  }

  // 7. Prefetcher: any lookup mutates its stream table (use clocks), so
  // require zero activity.
  if (S1.PrefetcherLookups != S3.PrefetcherLookups) {
    Reason = MemFoldReason::PrefetcherDrift;
    return false;
  }

  // 8. Page tables: demand mapping must not have grown them.
  if (S1.CpuPtPages != S3.CpuPtPages || S1.GpuPtPages != S3.GpuPtPages) {
    Reason = MemFoldReason::PageTableGrowth;
    return false;
  }

  // 9. Registry counters: same key set, equal per-window deltas.
  // Histograms (bg-drain durations) must be untouched — their samples
  // carry absolute times.
  if (S1.Counters.size() != S2.Counters.size() ||
      S2.Counters.size() != S3.Counters.size() ||
      S1.HistogramSums != S3.HistogramSums) {
    Reason = MemFoldReason::StatsDrift;
    return false;
  }
  for (size_t I = 0; I != S1.Counters.size(); ++I) {
    if (S1.Counters[I].first != S2.Counters[I].first ||
        S2.Counters[I].first != S3.Counters[I].first ||
        !deltasEqual(S1.Counters[I].second, S2.Counters[I].second,
                     S3.Counters[I].second)) {
      Reason = MemFoldReason::StatsDrift;
      return false;
    }
  }

  Reason = MemFoldReason::None;
  return true;
}

void MemFoldObserver::apply(uint64_t Rem) {
  const SysSnap &S2 = Snaps[1], &S3 = Snaps[2];
  Mem.cpuL1().applyFold(S2.CpuL1, S3.CpuL1, Rem);
  Mem.cpuL2().applyFold(S2.CpuL2, S3.CpuL2, Rem);
  Mem.gpuL1().applyFold(S2.GpuL1, S3.GpuL1, Rem);
  Mem.l3().applyFold(S2.L3, S3.L3, Rem);
  Mem.tlb(PuKind::Cpu).applyFold(S2.CpuTlb, S3.CpuTlb, Rem);
  Mem.tlb(PuKind::Gpu).applyFold(S2.GpuTlb, S3.GpuTlb, Rem);
  Mem.mshr(Pu).applyFold(Pu == PuKind::Cpu ? S2.CpuMshr : S2.GpuMshr,
                         Pu == PuKind::Cpu ? S3.CpuMshr : S3.GpuMshr, Rem);
  Mem.cpuDram().applyFold(S2.CpuDram, S3.CpuDram, Rem);
  Mem.noc().applyFoldPorts(S2.NocPorts, S3.NocPorts, Rem);
  Mem.noc().applyFoldStats(S2.Noc, S3.Noc, Rem);
  Mem.directory().applyFoldStats(S2.Dir.Stats, S3.Dir.Stats, Rem);
  for (size_t I = 0; I != S2.Counters.size(); ++I) {
    uint64_t Delta = S3.Counters[I].second - S2.Counters[I].second;
    if (Delta != 0)
      Mem.stats().counterRef(S2.Counters[I].first) += Delta * Rem;
  }
}
