//===- memory/FenceSemantics.h - Per-model fence/visibility -----*- C++ -*-===//
///
/// \file
/// The per-memory-model visibility table the static race verifier
/// evaluates fences against. Table I's design axes decide which
/// synchronization edges publish which data: in every model the
/// kernel-launch/join control transfers order the coherent locations, but
/// under an ownership discipline (LRB's api-acq) the shared region is
/// *excluded* from that blanket ordering — shared-region data moves
/// between the PUs only through release/acquire ownership actions, so a
/// dropped api-acq is a race even though the launch still happened.
/// Transfers publish the moved copy at their completion (api-pci /
/// api-tr per connection); asynchronous copies complete on the DMA lane
/// and need a drain (dma-wait or a synchronizing launch) before the data
/// is safe, with ADSM's runtime additionally paging async results in on
/// demand for serial consumers (lib-pf style lazy pull).
///
/// This header depends only on primitives (address-space kind, flags) so
/// memory/ stays below core/; core-level code builds the table from a
/// SystemConfig via the forConfig helper in analysis/RaceDetector.h.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_FENCESEMANTICS_H
#define HETSIM_MEMORY_FENCESEMANTICS_H

#include "memory/AddressSpaceModel.h"
#include "memory/ConsistencyChecker.h"
#include "trace/SpecialInst.h"

#include <string>

namespace hetsim {

/// The visibility table of one memory model.
struct FenceSemantics {
  AddressSpaceKind AddrSpace = AddressSpaceKind::Unified;
  ConsistencyModel Consistency = ConsistencyModel::Weak;

  /// Kernel launch/join publishes shared-region data. False exactly when
  /// the model uses an ownership discipline: then only api-acq
  /// release/acquire actions move shared-region visibility.
  bool LaunchOrdersSharedRegion = true;

  /// Shared-region accesses require ownership (api-acq) edges.
  bool OwnershipRequired = false;

  /// Transfers run on the DMA lane and publish at their completion node;
  /// a drain (dma-wait or synchronizing launch) is required before the
  /// moved data may be observed.
  bool AsyncCopies = false;

  /// The ADSM runtime pages asynchronously returned results in on demand
  /// for a serial consumer (the lazy-pull edge): the consumer is ordered
  /// after the copy without an explicit drain.
  bool LazySerialPull = false;

  /// The special instruction a bulk transfer lowers to under this model
  /// (api-pci for disjoint/ADSM PCI-E copies, api-tr for the LRB
  /// aperture, none for unified spaces).
  SpecialInst TransferInst = SpecialInst::None;

  /// Builds the table from primitives (see the core-level forConfig
  /// wrapper for SystemConfig input).
  static FenceSemantics make(AddressSpaceKind Space, bool UseOwnership,
                             bool UseAsyncCopies, ConsistencyModel Model);

  /// Under Strong consistency every access is globally ordered, so no
  /// unordered pair is a model-visible race.
  bool everythingOrdered() const {
    return Consistency == ConsistencyModel::Strong;
  }

  /// The fix-it phrase for an unordered pair on a location of the given
  /// class: which missing fence would have ordered it.
  std::string missingEdgeHint(bool SharedRegionLocation,
                              bool DmaInvolved) const;
};

} // namespace hetsim

#endif // HETSIM_MEMORY_FENCESEMANTICS_H
