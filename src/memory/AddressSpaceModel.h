//===- memory/AddressSpaceModel.h - The four address spaces -----*- C++ -*-===//
///
/// \file
/// The paper's four memory-address-space design options (Section II-A,
/// Figure 1): unified, disjoint, partially shared, and asymmetric
/// distributed shared memory (ADSM). An AddressSpaceModel decides where a
/// kernel's data objects live in each PU's virtual space, which ranges are
/// shared, and which accesses each PU is allowed to make.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_ADDRESSSPACEMODEL_H
#define HETSIM_MEMORY_ADDRESSSPACEMODEL_H

#include "trace/DataLayout.h"

#include <memory>
#include <string>
#include <vector>

namespace hetsim {

/// The four design options of Figure 1.
enum class AddressSpaceKind : uint8_t {
  Unified = 0,
  Disjoint,
  PartiallyShared,
  Adsm,
};

/// Short display name ("UNI", "DIS", "PAS", "ADSM") used by Figure 7 and
/// Table V.
const char *addressSpaceShortName(AddressSpaceKind Kind);

/// Full display name ("unified", "disjoint", ...).
const char *addressSpaceName(AddressSpaceKind Kind);

/// Virtual-address region bases. Regions are disjoint so a segment's
/// region is recoverable from any address inside it.
namespace region {
inline constexpr Addr CpuPrivateBase = 0x10000000ull;
inline constexpr Addr GpuPrivateBase = 0x50000000ull;
inline constexpr Addr SharedBase = 0x90000000ull;
inline constexpr uint64_t RegionSpan = 0x40000000ull;
} // namespace region

/// Which region an address belongs to.
enum class MemRegion : uint8_t { CpuPrivate, GpuPrivate, Shared, Unknown };

/// Classifies \p Address into a region.
MemRegion regionOf(Addr Address);

/// The placement an address-space model computed for one kernel instance.
struct Placement {
  AddressSpaceKind Kind = AddressSpaceKind::Unified;

  /// Addresses the CPU-side compute uses for each data object.
  KernelDataLayout CpuLayout;

  /// Addresses the GPU-side compute uses. Equal to CpuLayout except under
  /// the disjoint space, where objects are duplicated into GPU space.
  KernelDataLayout GpuLayout;

  /// Names of objects living in the shared region (empty for disjoint).
  std::vector<std::string> SharedObjects;

  /// Bytes duplicated into GPU private space (disjoint only).
  uint64_t DuplicatedBytes = 0;

  /// Returns true if the named object is in the shared region.
  bool isShared(const std::string &Name) const;
};

/// Base class of the four models.
class AddressSpaceModel {
public:
  virtual ~AddressSpaceModel();

  virtual AddressSpaceKind kind() const = 0;

  /// Places an arbitrary list of data objects under this model's rules
  /// (custom workloads use this directly).
  virtual Placement
  placeObjects(const std::vector<DataObjectSpec> &Objects) const = 0;

  /// Places \p Kernel's Table III data objects.
  Placement place(KernelId Kernel) const {
    return placeObjects(kernelDataObjects(Kernel));
  }

  /// True if \p Pu may access \p Address at all under this model. Under
  /// ADSM the GPU may only touch its private space and the shared space;
  /// under disjoint each PU sees only its own space (Section II-A).
  virtual bool canAccess(PuKind Pu, Addr Address) const;

  /// True if this model requires explicit transfer commands to move data
  /// between the PUs (disjoint), as opposed to shared-space visibility.
  virtual bool needsExplicitTransfer() const;

  /// True if the model supports the ownership optimization (partially
  /// shared and ADSM, Section II-A3/II-A4).
  virtual bool supportsOwnership() const;

  /// Returns the model for \p Kind (static lifetime).
  static const AddressSpaceModel &forKind(AddressSpaceKind Kind);
};

/// Section II-A1: no separation between CPU and GPU address space.
class UnifiedAddressSpace final : public AddressSpaceModel {
public:
  AddressSpaceKind kind() const override { return AddressSpaceKind::Unified; }
  Placement
  placeObjects(const std::vector<DataObjectSpec> &Objects) const override;
};

/// Section II-A2: fully separate spaces; explicit communication required.
class DisjointAddressSpace final : public AddressSpaceModel {
public:
  AddressSpaceKind kind() const override { return AddressSpaceKind::Disjoint; }
  Placement
  placeObjects(const std::vector<DataObjectSpec> &Objects) const override;
  bool canAccess(PuKind Pu, Addr Address) const override;
  bool needsExplicitTransfer() const override { return true; }
};

/// Section II-A3: a subset of the space is shared; ownership optional.
class PartiallySharedAddressSpace final : public AddressSpaceModel {
public:
  AddressSpaceKind kind() const override {
    return AddressSpaceKind::PartiallyShared;
  }
  Placement
  placeObjects(const std::vector<DataObjectSpec> &Objects) const override;
  bool supportsOwnership() const override { return true; }
};

/// Section II-A4: the CPU sees everything; the GPU sees only its own and
/// the shared (GPU-resident) space.
class AdsmAddressSpace final : public AddressSpaceModel {
public:
  AddressSpaceKind kind() const override { return AddressSpaceKind::Adsm; }
  Placement
  placeObjects(const std::vector<DataObjectSpec> &Objects) const override;
  bool canAccess(PuKind Pu, Addr Address) const override;
  bool supportsOwnership() const override { return true; }
};

} // namespace hetsim

#endif // HETSIM_MEMORY_ADDRESSSPACEMODEL_H
