//===- memory/ConsistencyChecker.h - Cross-PU visibility checks -*- C++ -*-===//
///
/// \file
/// A happens-before checker for the consistency models of Table I. The
/// paper classifies systems as weakly consistent, centralized-release
/// consistent, or strongly consistent; what that means operationally is
/// *which synchronization operations order cross-PU accesses*. This
/// checker consumes an event sequence (reads/writes per PU plus
/// synchronization events: release/acquire pairs, kernel launch/return,
/// barriers) and reports conflicting cross-PU accesses that are not
/// ordered by the model — i.e. data races whose outcome the memory model
/// leaves undefined.
///
/// The simulator driver uses it to validate lowered programs: under weak
/// consistency, every GPU access to an object written by the CPU must be
/// separated by a synchronization edge (which is exactly what the
/// ownership transfers / kernel boundaries provide).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_CONSISTENCYCHECKER_H
#define HETSIM_MEMORY_CONSISTENCYCHECKER_H

#include "common/Types.h"

#include <string>
#include <vector>

namespace hetsim {

/// The models of Table I's "consistency" column.
enum class ConsistencyModel : uint8_t {
  /// Cross-PU ordering only through explicit synchronization operations
  /// (release/acquire, kernel boundaries, barriers).
  Weak = 0,
  /// Release consistency with a centralized home (COMIC): releases
  /// publish to the home node; acquires pull from it. Operationally the
  /// same edges as Weak for two PUs, but releases are globally ordered.
  CentralizedRelease,
  /// Every access is globally ordered (sequential consistency): no
  /// races are "undefined", so the checker never reports.
  Strong,
};

const char *consistencyModelName(ConsistencyModel Model);

/// Kinds of events in a checked history.
enum class SyncEventKind : uint8_t {
  Read,        ///< PU reads Object.
  Write,       ///< PU writes Object.
  Release,     ///< PU releases Object (publish).
  Acquire,     ///< PU acquires Object (subscribe).
  KernelLaunch,///< CPU -> GPU control transfer (orders all prior CPU ops).
  KernelReturn,///< GPU -> CPU control transfer (orders all prior GPU ops).
  Barrier,     ///< Full two-sided synchronization on all objects.
};

/// One event. Object names scope Release/Acquire; KernelLaunch/Return
/// and Barrier ignore the object field.
struct SyncEvent {
  PuKind Pu = PuKind::Cpu;
  SyncEventKind Kind = SyncEventKind::Read;
  std::string Object;
};

/// A reported violation: a cross-PU conflicting pair with no ordering
/// edge under the model.
struct ConsistencyViolation {
  size_t EarlierIndex = 0;
  size_t LaterIndex = 0;
  std::string Object;
  std::string Description;
};

/// Checks a history against a model.
class ConsistencyChecker {
public:
  explicit ConsistencyChecker(ConsistencyModel M) : Model(M) {}

  /// Appends an event to the history.
  void addEvent(const SyncEvent &Event) { History.push_back(Event); }

  /// Convenience emitters.
  void read(PuKind Pu, const std::string &Object) {
    addEvent({Pu, SyncEventKind::Read, Object});
  }
  void write(PuKind Pu, const std::string &Object) {
    addEvent({Pu, SyncEventKind::Write, Object});
  }
  void release(PuKind Pu, const std::string &Object) {
    addEvent({Pu, SyncEventKind::Release, Object});
  }
  void acquire(PuKind Pu, const std::string &Object) {
    addEvent({Pu, SyncEventKind::Acquire, Object});
  }
  void kernelLaunch() {
    addEvent({PuKind::Cpu, SyncEventKind::KernelLaunch, ""});
  }
  void kernelReturn() {
    addEvent({PuKind::Gpu, SyncEventKind::KernelReturn, ""});
  }
  void barrier(PuKind Pu) { addEvent({Pu, SyncEventKind::Barrier, ""}); }

  /// Analyzes the history; returns all unordered conflicting cross-PU
  /// pairs (empty under Strong, or when synchronization is sufficient).
  std::vector<ConsistencyViolation> check() const;

  /// True if check() returns no violations.
  bool isRaceFree() const { return check().empty(); }

  size_t eventCount() const { return History.size(); }
  void clear() { History.clear(); }

  ConsistencyModel model() const { return Model; }

private:
  ConsistencyModel Model;
  std::vector<SyncEvent> History;
};

} // namespace hetsim

#endif // HETSIM_MEMORY_CONSISTENCYCHECKER_H
