//===- memory/Ownership.cpp -----------------------------------------------===//

#include "memory/Ownership.h"

#include "common/Error.h"
#include "common/Log.h"

using namespace hetsim;

OwnershipRegistry::Object *OwnershipRegistry::find(const std::string &Name) {
  for (Object &O : Objects)
    if (O.Name == Name)
      return &O;
  return nullptr;
}

const OwnershipRegistry::Object *
OwnershipRegistry::find(const std::string &Name) const {
  return const_cast<OwnershipRegistry *>(this)->find(Name);
}

const OwnershipRegistry::Object *
OwnershipRegistry::findByAddr(Addr Address) const {
  for (const Object &O : Objects)
    if (Address >= O.Base && Address < O.Base + O.Bytes)
      return &O;
  return nullptr;
}

void OwnershipRegistry::registerObject(const std::string &Name, Addr Base,
                                       uint64_t Bytes, PuKind InitialOwner) {
  if (find(Name))
    fatalError(("ownership object registered twice: " + Name).c_str());
  Objects.push_back({Name, Base, Bytes, InitialOwner});
}

void OwnershipRegistry::release(const std::string &Name, PuKind Releaser) {
  Object *O = find(Name);
  if (!O)
    fatalError(("release of unknown object: " + Name).c_str());
  if (O->Owner && *O->Owner != Releaser) {
    // Releasing an object you do not own is a programming-model violation.
    ++Violations;
    HETSIM_WARN("PU %s released '%s' owned by the other PU",
                puKindName(Releaser), Name.c_str());
  }
  O->Owner.reset();
  ++Transitions;
}

void OwnershipRegistry::acquire(const std::string &Name, PuKind NewOwner) {
  Object *O = find(Name);
  if (!O)
    fatalError(("acquire of unknown object: " + Name).c_str());
  if (O->Owner && *O->Owner != NewOwner) {
    // Acquiring without an intervening release breaks the single-writer
    // guarantee that lets the shared space skip coherence.
    ++Violations;
    HETSIM_WARN("PU %s acquired '%s' still owned by the other PU",
                puKindName(NewOwner), Name.c_str());
  }
  O->Owner = NewOwner;
  ++Transitions;
}

std::optional<PuKind> OwnershipRegistry::ownerOf(Addr Address) const {
  const Object *O = findByAddr(Address);
  return O ? O->Owner : std::nullopt;
}

bool OwnershipRegistry::checkAccess(PuKind Pu, Addr Address) {
  const Object *O = findByAddr(Address);
  if (!O)
    return true; // Not a registered shared object.
  if (O->Owner && *O->Owner == Pu)
    return true;
  ++Violations;
  return false;
}

bool OwnershipRegistry::hasObject(const std::string &Name) const {
  return find(Name) != nullptr;
}

std::optional<PuKind>
OwnershipRegistry::ownerOfObject(const std::string &Name) const {
  const Object *O = find(Name);
  if (!O)
    fatalError(("ownerOfObject: unknown object " + Name).c_str());
  return O->Owner;
}

void OwnershipRegistry::clear() {
  Objects.clear();
  Violations = 0;
  Transitions = 0;
}
