//===- memory/Tlb.cpp -----------------------------------------------------===//

#include "memory/Tlb.h"

#include "common/Error.h"

using namespace hetsim;

Tlb::Tlb(unsigned NumEntries, unsigned NumWays, uint64_t PageSize)
    : Ways(NumWays), PageBytes(PageSize) {
  if (NumWays == 0 || NumEntries % NumWays != 0 ||
      !isPowerOf2(NumEntries / NumWays) || !isPowerOf2(PageSize))
    fatalError("invalid TLB geometry");
  NumSets = NumEntries / NumWays;
  Entries.resize(NumEntries);
}

bool Tlb::lookup(Addr VAddr) {
  ++Stats.Lookups;
  uint64_t Vpn = VAddr / PageBytes;
  unsigned SetBase = unsigned(Vpn & (NumSets - 1)) * Ways;

  for (unsigned W = 0; W != Ways; ++W) {
    Entry &E = Entries[SetBase + W];
    if (E.Valid && E.Vpn == Vpn) {
      ++Stats.Hits;
      E.Stamp = NextStamp++;
      return true;
    }
  }

  ++Stats.Misses;
  // Fill the LRU (or first invalid) way.
  unsigned Victim = 0;
  for (unsigned W = 0; W != Ways; ++W) {
    Entry &E = Entries[SetBase + W];
    if (!E.Valid) {
      Victim = W;
      break;
    }
    if (E.Stamp < Entries[SetBase + Victim].Stamp)
      Victim = W;
  }
  Entry &E = Entries[SetBase + Victim];
  E.Valid = true;
  E.Vpn = Vpn;
  E.Stamp = NextStamp++;
  return false;
}

void Tlb::flush() {
  for (Entry &E : Entries)
    E.Valid = false;
}
