//===- memory/Tlb.cpp -----------------------------------------------------===//

#include "memory/Tlb.h"

#include "common/Error.h"

using namespace hetsim;

Tlb::Tlb(unsigned NumEntries, unsigned NumWays, uint64_t PageSize)
    : Ways(NumWays), PageBytes(PageSize) {
  if (NumWays == 0 || NumEntries % NumWays != 0 ||
      !isPowerOf2(NumEntries / NumWays) || !isPowerOf2(PageSize))
    fatalError("invalid TLB geometry");
  NumSets = NumEntries / NumWays;
  Entries.resize(NumEntries);
}

bool Tlb::lookup(Addr VAddr) {
  ++Stats.Lookups;
  uint64_t Vpn = VAddr / PageBytes;
  unsigned SetBase = unsigned(Vpn & (NumSets - 1)) * Ways;

  for (unsigned W = 0; W != Ways; ++W) {
    Entry &E = Entries[SetBase + W];
    if (E.Valid && E.Vpn == Vpn) {
      ++Stats.Hits;
      E.Stamp = NextStamp++;
      return true;
    }
  }

  ++Stats.Misses;
  // Fill the LRU (or first invalid) way.
  unsigned Victim = 0;
  for (unsigned W = 0; W != Ways; ++W) {
    Entry &E = Entries[SetBase + W];
    if (!E.Valid) {
      Victim = W;
      break;
    }
    if (E.Stamp < Entries[SetBase + Victim].Stamp)
      Victim = W;
  }
  Entry &E = Entries[SetBase + Victim];
  E.Valid = true;
  E.Vpn = Vpn;
  E.Stamp = NextStamp++;
  return false;
}

void Tlb::flush() {
  for (Entry &E : Entries)
    E.Valid = false;
}

Tlb::FoldSnap Tlb::foldSnapshot() const {
  FoldSnap S;
  S.Entries.reserve(Entries.size());
  for (const Entry &E : Entries)
    S.Entries.push_back({E.Vpn, E.Stamp, E.Valid});
  S.NextStamp = NextStamp;
  S.Stats = Stats;
  S.Ways = Ways;
  return S;
}

void Tlb::applyFold(const FoldSnap &S2, const FoldSnap &S3, uint64_t Rem) {
  for (size_t I = 0; I != Entries.size(); ++I)
    Entries[I].Stamp += (S3.Entries[I].Stamp - S2.Entries[I].Stamp) * Rem;
  NextStamp += (S3.NextStamp - S2.NextStamp) * Rem;
  Stats.Lookups += (S3.Stats.Lookups - S2.Stats.Lookups) * Rem;
  Stats.Hits += (S3.Stats.Hits - S2.Stats.Hits) * Rem;
  Stats.Misses += (S3.Stats.Misses - S2.Stats.Misses) * Rem;
}
