//===- memory/FirstTouchTracker.h - First-touch page faults -----*- C++ -*-===//
///
/// \file
/// Tracks first-time accesses to pages of the shared space. The LRB-style
/// partially shared space "generates page faults if data in the shared
/// space is first-time accessed" (Section V-A); each fault costs lib-pf
/// cycles (Table IV: 42000).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_FIRSTTOUCHTRACKER_H
#define HETSIM_MEMORY_FIRSTTOUCHTRACKER_H

#include "common/Types.h"

#include <unordered_set>

namespace hetsim {

/// Per-page first-touch tracking over an address range.
class FirstTouchTracker {
public:
  FirstTouchTracker(Addr RangeBase, uint64_t RangeBytes, uint64_t PageSize)
      : Base(RangeBase), Bytes(RangeBytes), PageBytes(PageSize) {}

  /// Records an access to \p Address; returns true exactly once per page
  /// (the first touch, i.e. a page fault).
  bool touch(Addr Address);

  /// True if \p Address's page was already touched.
  bool wasTouched(Addr Address) const;

  /// Marks the pages of [RangeBase, RangeBase+RangeBytes) as touched (e.g.
  /// a bulk transfer pre-faulted them).
  void preTouch(Addr RangeBase, uint64_t RangeBytes);

  /// Number of pages a range spans (for estimating batch fault costs).
  uint64_t pagesIn(uint64_t RangeBytes) const {
    return ceilDiv(RangeBytes, PageBytes);
  }

  uint64_t faultCount() const { return Faults; }
  uint64_t pageBytes() const { return PageBytes; }

  /// Forgets all touches (a fresh run).
  void reset();

private:
  bool inRange(Addr Address) const {
    return Address >= Base && Address < Base + Bytes;
  }

  Addr Base;
  uint64_t Bytes;
  uint64_t PageBytes;
  std::unordered_set<uint64_t> Touched;
  uint64_t Faults = 0;
};

} // namespace hetsim

#endif // HETSIM_MEMORY_FIRSTTOUCHTRACKER_H
