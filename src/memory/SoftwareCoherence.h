//===- memory/SoftwareCoherence.h - Runtime coherence (GMAC) ----*- C++ -*-===//
///
/// \file
/// The software (runtime) coherence protocol of ADSM/GMAC (Section
/// II-A4, Table I "GMAC protocol"): each shared object is a coherence
/// unit with host and accelerator copies; the runtime tracks which copy
/// is valid and moves data lazily when the other side accesses a stale
/// object. This is the "purely by software coherence support" option the
/// paper contrasts with hardware coherence.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_SOFTWARECOHERENCE_H
#define HETSIM_MEMORY_SOFTWARECOHERENCE_H

#include "common/Types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hetsim {

/// Validity of an object's two copies.
enum class SwCohState : uint8_t {
  HostValid = 0, ///< Only the host copy is current.
  AccValid,      ///< Only the accelerator copy is current.
  BothValid,     ///< Both copies current (clean shared).
};

/// Returns a short name for a state.
const char *swCohStateName(SwCohState State);

/// Protocol statistics.
struct SwCohStats {
  uint64_t HostToDevTransfers = 0;
  uint64_t DevToHostTransfers = 0;
  uint64_t BytesMoved = 0;
  uint64_t AvoidedTransfers = 0; ///< Accesses already coherent.
};

/// Per-object runtime coherence. All objects start HostValid (the input
/// data is allocated and initialized on the CPU, Section IV-B).
class SoftwareCoherence {
public:
  /// Registers a shared object of \p Bytes. Inputs start HostValid (the
  /// host initialized them); pure outputs can start AccValid so the
  /// runtime never copies meaningless data in.
  void registerObject(const std::string &Name, uint64_t Bytes,
                      SwCohState Initial = SwCohState::HostValid);

  /// The accelerator is about to access \p Name. Returns the bytes that
  /// must move host->device first (0 if already coherent) and updates
  /// the protocol state (\p IsWrite invalidates the host copy).
  uint64_t onAccAccess(const std::string &Name, bool IsWrite);

  /// The host is about to access \p Name. Returns bytes to move
  /// device->host (0 if coherent); \p IsWrite invalidates the
  /// accelerator copy.
  uint64_t onHostAccess(const std::string &Name, bool IsWrite);

  /// The accelerator will overwrite \p Name wholesale without reading it:
  /// a write-invalidate that never copies data in.
  void onAccOverwrite(const std::string &Name);

  /// Current state of \p Name.
  SwCohState state(const std::string &Name) const;

  const SwCohStats &stats() const { return Stats; }

  /// Number of registered objects.
  size_t objectCount() const { return Objects.size(); }

  void clear();

private:
  struct Object {
    std::string Name;
    uint64_t Bytes;
    SwCohState State = SwCohState::HostValid;
  };

  Object &find(const std::string &Name);
  const Object &find(const std::string &Name) const;

  std::vector<Object> Objects;
  SwCohStats Stats;
};

} // namespace hetsim

#endif // HETSIM_MEMORY_SOFTWARECOHERENCE_H
