//===- memory/MemorySystem.h - The assembled memory hierarchy ---*- C++ -*-===//
///
/// \file
/// The full Table II memory system: per-PU TLBs and page tables, CPU
/// L1D+L2, GPU L1D + 16KB scratchpad, a shared 4-tile L3 over the ring
/// bus, and DDR3 DRAM — plus the design-space hooks the paper varies:
/// optional hardware coherence (MESI directory), an optional discrete GPU
/// memory, shared-space ownership checking, and first-touch page faults.
///
/// Timing model: latency walk. An access descends the hierarchy, updating
/// cache/bank/ring state as it goes, and returns its total latency in the
/// requesting PU's clock domain. Uncore state (L3, ring, DRAM) is kept in
/// CPU cycles and converted at the boundary.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_MEMORYSYSTEM_H
#define HETSIM_MEMORY_MEMORYSYSTEM_H

#include "cache/Cache.h"
#include "cache/Directory.h"
#include "cache/Mshr.h"
#include "cache/Scratchpad.h"
#include "cache/StreamPrefetcher.h"
#include "common/Stats.h"
#include "dram/Dram.h"
#include "interconnect/MeshNoc.h"
#include "interconnect/RingBus.h"
#include "memory/FirstTouchTracker.h"
#include "memory/HybridCoherence.h"
#include "memory/MemFast.h"
#include "memory/Ownership.h"
#include "memory/PageTable.h"
#include "memory/Tlb.h"

#include <functional>
#include <memory>
#include <vector>

namespace hetsim {

/// Configuration of the assembled hierarchy.
struct MemHierConfig {
  CacheConfig CpuL1 = CacheConfig::cpuL1D();
  CacheConfig CpuL2 = CacheConfig::cpuL2();
  CacheConfig GpuL1 = CacheConfig::gpuL1D();
  CacheConfig L3 = CacheConfig::sharedL3();
  DramConfig Dram;
  RingConfig Ring;
  /// Use a 2D mesh instead of the Table II ring (NoC design option).
  bool UseMeshNoc = false;
  MeshConfig Mesh;

  /// False removes the L3 (both PUs go straight to DRAM after L2/L1).
  bool EnableL3 = true;
  /// True routes GPU L1 misses through the shared L3 (integrated LLC,
  /// Sandy-Bridge style); false sends them to the GPU's own memory.
  bool GpuSharesL3 = true;
  /// True gives the GPU a discrete memory device (CPU+GPU/GMAC configs).
  bool SeparateGpuDram = false;
  /// True maintains MESI coherence between the PU private hierarchies.
  bool HwCoherence = false;

  Cycle TlbMissPenalty = 30; ///< Page-walk cycles (requester clock).
  unsigned CpuTlbEntries = 64;
  unsigned GpuTlbEntries = 32;
  unsigned TlbWays = 4;
  uint64_t CpuPageBytes = SmallPageBytes;
  uint64_t GpuPageBytes = LargePageBytes;
  unsigned CpuMshrs = 16;
  unsigned GpuMshrs = 32;
  uint64_t ScratchpadBytes = 16 * 1024;
  Cycle ScratchpadLatency = 2;
  uint64_t DeviceBytes = 1ull << 32; ///< Size of each physical device.

  /// Stream prefetching into the CPU L2 (off in the Table II baseline).
  bool EnableL2Prefetch = false;
  PrefetcherConfig Prefetch;
};

/// Which level served an access.
enum class HitLevel : uint8_t { L1, L2, L3, Dram, Scratchpad };

/// Result of one access.
struct MemAccessResult {
  Cycle Latency = 0; ///< In the requesting PU's clock.
  HitLevel Level = HitLevel::L1;
  bool TlbMiss = false;
  bool PageFault = false;          ///< First touch of a shared page.
  bool OwnershipViolation = false; ///< Non-owner touched a shared object.
  bool SpaceViolation = false;     ///< PU touched space it cannot see.
  bool CoherenceRemote = false;    ///< Data/invalidate involved the other PU.
};

class AddressSpaceModel;

/// Policies layered over the shared space (wired by system configs).
struct SharedSpacePolicy {
  OwnershipRegistry *Ownership = nullptr;
  FirstTouchTracker *FirstTouch = nullptr;
  /// When set, accesses are checked against the address-space model's
  /// visibility rules (Section II-A: e.g. the GPU cannot reach CPU
  /// private space under disjoint or ADSM). Violations are counted in
  /// "mem.space_violations" and flagged on the result.
  const AddressSpaceModel *SpaceModel = nullptr;
  /// When set (and HwCoherence is on), only addresses the map assigns to
  /// the hardware domain consult the MESI directory — the Cohesion-style
  /// hybrid memory model of Section VI-B.
  HybridCoherenceMap *HybridDomains = nullptr;
  /// lib-pf (Table IV): handling cost of one page fault, requester cycles.
  Cycle PageFaultLatency = 42000;
  /// Model faults only on GPU accesses (the LRB case study: the GPU
  /// faults shared pages in on first use).
  bool FaultOnlyGpu = true;
};

/// The assembled hierarchy.
class MemorySystem {
public:
  explicit MemorySystem(const MemHierConfig &Config = MemHierConfig());

  const MemHierConfig &config() const { return Config; }

  /// Maps [VBase, VBase+Bytes) into \p Pu's page table, backed by that
  /// PU's memory device (or the unified device).
  void mapRange(PuKind Pu, Addr VBase, uint64_t Bytes);

  /// Performs one demand access of at most one cache line. \p NowPu is the
  /// current cycle in \p Pu's clock; the returned latency is in the same
  /// clock. \p ExplicitHint tags the line explicitly at the L3 (hybrid
  /// locality, Section II-B5).
  MemAccessResult access(PuKind Pu, Addr VAddr, uint32_t Bytes, bool IsWrite,
                         Cycle NowPu, bool ExplicitHint = false);

  /// GPU software-managed-cache access (offset-addressed).
  Cycle scratchpadAccess(Addr Offset, uint32_t Bytes, bool IsWrite);

  /// Warp-wide scratchpad access with bank-conflict serialization.
  Cycle scratchpadWarpAccess(Addr Offset, uint32_t BytesPerLane,
                             unsigned Lanes, uint32_t StrideBytes,
                             bool IsWrite);

  /// Explicit locality `push` (Section II-B): stages [Base, Base+Bytes)
  /// into the L3 with the explicit tag set. Returns the cost in \p Pu
  /// cycles.
  Cycle pushToShared(PuKind Pu, Addr VBase, uint64_t Bytes, Cycle NowPu);

  /// Writes back and invalidates \p Pu's private dirty lines (release
  /// semantics at ownership/kernel boundaries). Returns lines written
  /// back.
  uint64_t flushPrivate(PuKind Pu);

  /// Drains background (posted) traffic — victim writebacks and prefetch
  /// fills — pending in the CPU DRAM FR-FCFS queue, starting at \p NowCpu
  /// (CPU cycles). Drain time is recorded in "dram.cpu.bg_*" stats but
  /// billed to no requester: posted writes complete in the background,
  /// and the bank/bus busy-until state they leave behind is the physical
  /// contention later accesses observe. Called internally at every
  /// boundary that can enqueue, so the queue is empty whenever the system
  /// is quiescent; exposed for fabrics and tests that force quiescence.
  void drainBackground(Cycle NowCpu);

  /// One background-queue drain, reported to the observability hook.
  struct BgDrainEvent {
    Cycle StartCpu = 0;    ///< Drain start, CPU cycles.
    Cycle DurationCpu = 0; ///< Cycles until the last request completed.
    uint64_t Requests = 0; ///< Requests drained.
  };

  /// Installs a callback fired on every non-empty background drain (the
  /// trace-event timeline). Keeps this library free of an obs dependency;
  /// pass nullptr-constructed function to clear.
  void setBgDrainHook(std::function<void(const BgDrainEvent &)> Hook) {
    DrainHook = std::move(Hook);
  }

  /// Globalization / privatization (Section II-A3): moves the virtual
  /// range [OldBase, OldBase+Bytes) of \p Pu's space to NewBase (e.g.
  /// from a private region into the shared region). Remaps the page
  /// table and flushes the PU's TLB; the cost is per-page remap work
  /// plus the flush. Returns cycles in \p Pu's clock.
  Cycle remapRange(PuKind Pu, Addr OldBase, Addr NewBase, uint64_t Bytes,
                   Cycle RemapCyclesPerPage = 300);

  /// Attaches shared-space policies (non-owning).
  void setSharedPolicy(const SharedSpacePolicy &P) { Policy = P; }

  /// Component access for tests, benches, and the comm fabrics.
  Cache &cpuL1() { return *CpuL1; }
  Cache &cpuL2() { return *CpuL2; }
  Cache &gpuL1() { return *GpuL1; }
  Cache &l3() { return *L3; }
  DramSystem &cpuDram() { return *CpuDram; }
  DramSystem &gpuDram();
  Interconnect &noc() { return *Noc; }
  Interconnect &ring() { return *Noc; } ///< Historical accessor name.
  Directory &directory() { return Dir; }
  MshrFile &mshr(PuKind Pu) { return Pu == PuKind::Cpu ? CpuMshr : GpuMshr; }
  bool hasSeparateGpuDram() const { return GpuDramDevice != nullptr; }
  Tlb &tlb(PuKind Pu) { return Pu == PuKind::Cpu ? CpuTlb : GpuTlb; }
  StreamPrefetcher &prefetcher() { return Prefetcher; }
  PageTable &pageTable(PuKind Pu) {
    return Pu == PuKind::Cpu ? CpuPt : GpuPt;
  }
  Scratchpad &scratchpad() { return Smem; }

  /// Aggregate counters ("mem.pagefaults", "mem.coh_remote", ...).
  const StatRegistry &stats() const { return Stats; }
  StatRegistry &stats() { return Stats; }

  /// Fidelity tier (HETSIM_MEMFAST), resolved once at construction.
  MemFastMode memFastModeCached() const { return MFMode; }

  /// Routes an echo of every demand access into \p Log until cleared
  /// with nullptr. Used by the fold observer's window logging.
  void setAccessLog(std::vector<MemAccessEcho> *Log) { AccessLog = Log; }

  /// Fold-coverage counters, bound to registry entries at construction
  /// (stable hetsim-metrics-v1 schema: "memfast.*").
  struct MemFastCounters {
    uint64_t *FoldAttempts = nullptr;   ///< memfast.fold_attempts
    uint64_t *Folds = nullptr;          ///< memfast.folds
    uint64_t *FoldedRecords = nullptr;  ///< memfast.folded_records
    uint64_t *WarmAccesses = nullptr;   ///< memfast.warm_accesses
    uint64_t *SampledWindows = nullptr; ///< memfast.sampled_windows
    uint64_t *SampledRecords = nullptr; ///< memfast.sampled_records
    uint64_t *Fallback[NumMemFoldReasons] = {}; ///< memfast.fallback.*
  };
  MemFastCounters &memfastCounters() { return MFCounters; }

  /// Wall-clock attribution of the demand-access walk, for the memphase
  /// bench: where does simulate time go inside the memory system?
  struct MemPhaseProfile {
    uint64_t TlbNs = 0;   ///< TLB lookup, translation, policy checks.
    uint64_t CacheNs = 0; ///< Cache walk + coherence + NoC (the rest).
    uint64_t DramNs = 0;  ///< DRAM device time (demand + drains).
    uint64_t Accesses = 0;
  };
  const MemPhaseProfile &phaseProfile() const { return Prof; }

  /// HETSIM_MEMPHASE=1 enables the per-access timers (off by default:
  /// two clock reads per access). Resolved at construction.
  static bool memPhaseProfilingEnabled();
  /// Test/bench hook: forces profiling on (1) / off (0) / env (-1) for
  /// subsequently constructed systems.
  static void setMemPhaseProfilingForTesting(int Enabled);

private:
  /// Functional-only warm-mode tail of access(): updates cache contents
  /// below the private L1 without MSHR/NoC/DRAM timing.
  MemAccessResult warmAccess(PuKind Pu, Addr PAddr, bool IsWrite,
                             bool ExplicitHint, MemAccessResult Result);
  /// Uncore walk beyond the private hierarchy; \p NowCpu in CPU cycles,
  /// returns completion cycle in CPU cycles.
  Cycle uncoreAccess(PuKind Pu, Addr PAddr, bool IsWrite, Cycle NowCpu,
                     bool ExplicitHint, HitLevel &Level);

  /// Applies coherence actions against the other PU's private caches.
  bool applyCoherence(PuKind Requestor, Addr PAddr, bool IsWrite,
                      Cycle &ExtraCpuCycles);

  MemHierConfig Config;
  std::unique_ptr<Cache> CpuL1;
  std::unique_ptr<Cache> CpuL2;
  std::unique_ptr<Cache> GpuL1;
  std::unique_ptr<Cache> L3;
  std::unique_ptr<DramSystem> CpuDram;
  std::unique_ptr<DramSystem> GpuDramDevice; // Only if SeparateGpuDram.
  std::unique_ptr<Interconnect> Noc;
  Directory Dir;
  MshrFile CpuMshr;
  MshrFile GpuMshr;
  Tlb CpuTlb;
  Tlb GpuTlb;
  PhysicalMemory CpuPhys;
  PhysicalMemory GpuPhys;
  PageTable CpuPt;
  PageTable GpuPt;
  Scratchpad Smem;
  StreamPrefetcher Prefetcher;
  SharedSpacePolicy Policy;
  StatRegistry Stats;

  // Conservation counters (see obs/Metrics.h for the contract), bound to
  // registry entries once at construction so the per-access charging
  // sites never hash a counter name.
  uint64_t *DramCpuDemand = nullptr;
  uint64_t *DramCpuWritebacks = nullptr;
  uint64_t *DramCpuPrefetchReads = nullptr;
  uint64_t *DramGpuDemand = nullptr;
  uint64_t *BgDrains = nullptr;
  uint64_t *BgRequests = nullptr;
  StatHistogram *BgDrainCycles = nullptr;
  // Per-access counters, same registration-time binding.
  uint64_t *MemCpuAccesses = nullptr;
  uint64_t *MemGpuAccesses = nullptr;
  uint64_t *MemDemandMaps = nullptr;
  uint64_t *MemCohRemote = nullptr;
  uint64_t *MemCohWritebacks = nullptr;
  uint64_t *MemSpaceViolations = nullptr;
  uint64_t *MemOwnershipViolations = nullptr;
  uint64_t *MemPagefaults = nullptr;
  uint64_t *MemGpuL1Writebacks = nullptr;
  uint64_t *MemPrefetchFills = nullptr;
  uint64_t *MemMshrMerges = nullptr;
  std::function<void(const BgDrainEvent &)> DrainHook;

  // Memory-phase fast path (DESIGN.md §11).
  MemFastMode MFMode = MemFastMode::Exact;
  MemFastCounters MFCounters;
  std::vector<MemAccessEcho> *AccessLog = nullptr;

  // memphase wall-clock attribution.
  MemPhaseProfile Prof;
  bool ProfileOn = false;
  uint64_t ProfDramNs = 0; ///< DRAM ns accrued inside the current access.
};

} // namespace hetsim

#endif // HETSIM_MEMORY_MEMORYSYSTEM_H
