//===- memory/AddressSpaceModel.cpp ---------------------------------------===//

#include "memory/AddressSpaceModel.h"

#include "common/Error.h"

using namespace hetsim;

const char *hetsim::addressSpaceShortName(AddressSpaceKind Kind) {
  switch (Kind) {
  case AddressSpaceKind::Unified:
    return "UNI";
  case AddressSpaceKind::Disjoint:
    return "DIS";
  case AddressSpaceKind::PartiallyShared:
    return "PAS";
  case AddressSpaceKind::Adsm:
    return "ADSM";
  }
  hetsim_unreachable("invalid address-space kind");
}

const char *hetsim::addressSpaceName(AddressSpaceKind Kind) {
  switch (Kind) {
  case AddressSpaceKind::Unified:
    return "unified";
  case AddressSpaceKind::Disjoint:
    return "disjoint";
  case AddressSpaceKind::PartiallyShared:
    return "partially shared";
  case AddressSpaceKind::Adsm:
    return "ADSM";
  }
  hetsim_unreachable("invalid address-space kind");
}

MemRegion hetsim::regionOf(Addr Address) {
  if (Address >= region::CpuPrivateBase &&
      Address < region::CpuPrivateBase + region::RegionSpan)
    return MemRegion::CpuPrivate;
  if (Address >= region::GpuPrivateBase &&
      Address < region::GpuPrivateBase + region::RegionSpan)
    return MemRegion::GpuPrivate;
  if (Address >= region::SharedBase &&
      Address < region::SharedBase + region::RegionSpan)
    return MemRegion::Shared;
  return MemRegion::Unknown;
}

bool Placement::isShared(const std::string &Name) const {
  for (const std::string &S : SharedObjects)
    if (S == Name)
      return true;
  return false;
}

AddressSpaceModel::~AddressSpaceModel() = default;

bool AddressSpaceModel::canAccess(PuKind, Addr) const { return true; }

bool AddressSpaceModel::needsExplicitTransfer() const { return false; }

bool AddressSpaceModel::supportsOwnership() const { return false; }

const AddressSpaceModel &AddressSpaceModel::forKind(AddressSpaceKind Kind) {
  static const UnifiedAddressSpace Unified;
  static const DisjointAddressSpace Disjoint;
  static const PartiallySharedAddressSpace PartiallyShared;
  static const AdsmAddressSpace Adsm;
  switch (Kind) {
  case AddressSpaceKind::Unified:
    return Unified;
  case AddressSpaceKind::Disjoint:
    return Disjoint;
  case AddressSpaceKind::PartiallyShared:
    return PartiallyShared;
  case AddressSpaceKind::Adsm:
    return Adsm;
  }
  hetsim_unreachable("invalid address-space kind");
}

//===----------------------------------------------------------------------===//
// Unified: one space; any task can run on any PU without explicit data
// transfer commands (Section II-A1). We place everything in the shared
// region; both layouts are identical.
//===----------------------------------------------------------------------===//

Placement UnifiedAddressSpace::placeObjects(
    const std::vector<DataObjectSpec> &Objects) const {
  Placement P;
  P.Kind = AddressSpaceKind::Unified;
  P.CpuLayout = KernelDataLayout::makeLinear(Objects, region::SharedBase);
  P.GpuLayout = P.CpuLayout;
  for (const DataObjectSpec &Spec : Objects)
    P.SharedObjects.push_back(Spec.Name);
  return P;
}

//===----------------------------------------------------------------------===//
// Disjoint: objects live in CPU space; the GPU computes on duplicated
// copies in its own space (the gpu_a/gpu_b/gpu_c pointers of Figure 3a).
//===----------------------------------------------------------------------===//

Placement DisjointAddressSpace::placeObjects(
    const std::vector<DataObjectSpec> &Objects) const {
  Placement P;
  P.Kind = AddressSpaceKind::Disjoint;
  P.CpuLayout = KernelDataLayout::makeLinear(Objects, region::CpuPrivateBase);
  P.GpuLayout = KernelDataLayout::makeLinear(Objects, region::GpuPrivateBase);
  P.DuplicatedBytes = P.GpuLayout.totalBytes();
  return P;
}

bool DisjointAddressSpace::canAccess(PuKind Pu, Addr Address) const {
  switch (regionOf(Address)) {
  case MemRegion::CpuPrivate:
    return Pu == PuKind::Cpu;
  case MemRegion::GpuPrivate:
    return Pu == PuKind::Gpu;
  case MemRegion::Shared:
    return false; // No shared region exists in a disjoint space.
  case MemRegion::Unknown:
    return false;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Partially shared: transferable objects carry the `shared` type qualifier
// and live in the shared region at the same address for both PUs; other
// data stays private (Section II-A3).
//===----------------------------------------------------------------------===//

Placement PartiallySharedAddressSpace::placeObjects(
    const std::vector<DataObjectSpec> &Objects) const {
  Placement P;
  P.Kind = AddressSpaceKind::PartiallyShared;
  P.CpuLayout = KernelDataLayout::makeLinear(Objects, region::SharedBase);
  P.GpuLayout = P.CpuLayout;
  for (const DataObjectSpec &Spec : Objects)
    P.SharedObjects.push_back(Spec.Name);
  return P;
}

//===----------------------------------------------------------------------===//
// ADSM: identical virtual ranges in both PUs over the shared objects,
// physically resident on the GPU side; the CPU may access everything, the
// GPU only its private and shared space (Section II-A4).
//===----------------------------------------------------------------------===//

Placement AdsmAddressSpace::placeObjects(
    const std::vector<DataObjectSpec> &Objects) const {
  Placement P;
  P.Kind = AddressSpaceKind::Adsm;
  P.CpuLayout = KernelDataLayout::makeLinear(Objects, region::SharedBase);
  P.GpuLayout = P.CpuLayout;
  for (const DataObjectSpec &Spec : Objects)
    P.SharedObjects.push_back(Spec.Name);
  return P;
}

bool AdsmAddressSpace::canAccess(PuKind Pu, Addr Address) const {
  if (Pu == PuKind::Cpu)
    return true; // The CPU can access the entire memory space.
  MemRegion R = regionOf(Address);
  return R == MemRegion::GpuPrivate || R == MemRegion::Shared;
}
