//===- memory/PageTable.h - Per-PU page tables ------------------*- C++ -*-===//
///
/// \file
/// Per-PU page tables. Section II-A1: a virtually unified address space
/// maps one virtual address to different physical addresses on each PU, and
/// each PU may use its own page size (GPUs use large pages for stream
/// locality) and its own table format. Partially shared spaces must keep
/// mappings in both tables (Section II-A3).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_PAGETABLE_H
#define HETSIM_MEMORY_PAGETABLE_H

#include "common/FlatMap.h"
#include "common/Types.h"

#include <optional>
#include <string>

namespace hetsim {

/// A bump allocator over one physical memory device (CPU DRAM, GPU DRAM,
/// or a single unified DRAM).
class PhysicalMemory {
public:
  PhysicalMemory(std::string DeviceName, uint64_t Capacity)
      : Name(std::move(DeviceName)), SizeBytes(Capacity) {}

  /// Allocates \p Bytes aligned to \p Align; aborts when exhausted (the
  /// simulator sizes devices generously; exhaustion is a setup bug).
  Addr allocate(uint64_t Bytes, uint64_t Align);

  uint64_t allocatedBytes() const { return Cursor; }
  uint64_t sizeBytes() const { return SizeBytes; }
  const std::string &name() const { return Name; }

private:
  std::string Name;
  uint64_t SizeBytes;
  uint64_t Cursor = 0;
};

/// One PU's page table: VPN -> PPN at a fixed page size.
class PageTable {
public:
  /// \p PageBytes must be a power of two (4KB CPU, 64KB GPU by default).
  PageTable(PuKind Owner, uint64_t PageBytes);

  PuKind owner() const { return Owner; }
  uint64_t pageBytes() const { return PageBytes; }

  /// Maps the virtual range [VBase, VBase+Bytes) to physical pages
  /// allocated from \p Device. Ranges are rounded out to page boundaries;
  /// already-mapped pages are left untouched.
  void mapRange(Addr VBase, uint64_t Bytes, PhysicalMemory &Device);

  /// Translates \p VAddr; std::nullopt means a (hard) page-table miss.
  /// One open-addressed probe — this sits on every memory access that
  /// misses the TLB, so it must not chase unordered_map buckets.
  std::optional<Addr> translate(Addr VAddr) const {
    const Addr *Ppn = Map.find(vpnOf(VAddr));
    if (!Ppn)
      return std::nullopt;
    return *Ppn + (VAddr & (PageBytes - 1));
  }

  /// True if the page containing \p VAddr is mapped.
  bool isMapped(Addr VAddr) const;

  /// Removes mappings overlapping [VBase, VBase+Bytes).
  void unmapRange(Addr VBase, uint64_t Bytes);

  /// Number of mapped pages.
  size_t mappedPages() const { return Map.size(); }

private:
  uint64_t vpnOf(Addr VAddr) const { return VAddr / PageBytes; }

  PuKind Owner;
  uint64_t PageBytes;
  FlatU64Map<Addr> Map; // VPN -> physical page base.
};

} // namespace hetsim

#endif // HETSIM_MEMORY_PAGETABLE_H
