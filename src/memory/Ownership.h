//===- memory/Ownership.h - Shared-space ownership control ------*- C++ -*-===//
///
/// \file
/// Ownership control for the partially shared space (Section II-A3, the
/// LRB programming model): each shared object has at most one owner PU, so
/// the shared space needs no coherence. Programmers/compilers insert
/// acquire and release commands; accesses by a non-owner are violations.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_OWNERSHIP_H
#define HETSIM_MEMORY_OWNERSHIP_H

#include "common/Types.h"

#include <optional>
#include <string>
#include <vector>

namespace hetsim {

/// Per-object ownership state and access checking.
class OwnershipRegistry {
public:
  /// Registers a shared object covering [Base, Base+Bytes). Initial owner
  /// is the CPU (initial data is loaded by the CPU, Section IV-B).
  void registerObject(const std::string &Name, Addr Base, uint64_t Bytes,
                      PuKind InitialOwner = PuKind::Cpu);

  /// Releases ownership of \p Name (no owner until acquired). Models
  /// releaseOwnership() in Figure 2(b).
  void release(const std::string &Name, PuKind Releaser);

  /// Acquires ownership of \p Name for \p NewOwner. Models
  /// acquireOwnership().
  void acquire(const std::string &Name, PuKind NewOwner);

  /// Returns the current owner of the object containing \p Address, or
  /// nullopt if unowned / not a registered object.
  std::optional<PuKind> ownerOf(Addr Address) const;

  /// Checks an access: returns true if OK. Accesses to a shared object by
  /// a PU that does not own it are counted as violations (and the paper's
  /// model forbids concurrent updates by both PUs).
  bool checkAccess(PuKind Pu, Addr Address);

  /// Number of ownership violations observed.
  uint64_t violationCount() const { return Violations; }

  /// Number of acquire/release operations performed.
  uint64_t transitionCount() const { return Transitions; }

  /// True if \p Name is registered.
  bool hasObject(const std::string &Name) const;

  /// Owner of \p Name; aborts if unknown.
  std::optional<PuKind> ownerOfObject(const std::string &Name) const;

  void clear();

private:
  struct Object {
    std::string Name;
    Addr Base;
    uint64_t Bytes;
    std::optional<PuKind> Owner;
  };

  Object *find(const std::string &Name);
  const Object *find(const std::string &Name) const;
  const Object *findByAddr(Addr Address) const;

  std::vector<Object> Objects;
  uint64_t Violations = 0;
  uint64_t Transitions = 0;
};

} // namespace hetsim

#endif // HETSIM_MEMORY_OWNERSHIP_H
