//===- memory/FirstTouchTracker.cpp ---------------------------------------===//

#include "memory/FirstTouchTracker.h"

using namespace hetsim;

bool FirstTouchTracker::touch(Addr Address) {
  if (!inRange(Address))
    return false;
  uint64_t Page = (Address - Base) / PageBytes;
  if (Touched.insert(Page).second) {
    ++Faults;
    return true;
  }
  return false;
}

bool FirstTouchTracker::wasTouched(Addr Address) const {
  if (!inRange(Address))
    return false;
  return Touched.count((Address - Base) / PageBytes) != 0;
}

void FirstTouchTracker::preTouch(Addr RangeBase, uint64_t RangeBytes) {
  if (RangeBytes == 0)
    return;
  Addr End = RangeBase + RangeBytes - 1;
  for (Addr A = RangeBase; A <= End; A += PageBytes) {
    if (inRange(A))
      Touched.insert((A - Base) / PageBytes);
  }
}

void FirstTouchTracker::reset() {
  Touched.clear();
  Faults = 0;
}
