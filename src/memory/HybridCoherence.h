//===- memory/HybridCoherence.h - Per-region coherence domains --*- C++ -*-===//
///
/// \file
/// A Cohesion-style hybrid memory model (Kelm et al., discussed in the
/// paper's Section VI-B): each address region is assigned to either the
/// hardware coherence domain (the MESI directory tracks its lines) or the
/// software domain (a runtime/programmer keeps it coherent; the directory
/// ignores it). Regions can migrate between domains at run time; a
/// transition costs per-line bookkeeping plus writebacks of dirty lines
/// leaving the hardware domain.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_MEMORY_HYBRIDCOHERENCE_H
#define HETSIM_MEMORY_HYBRIDCOHERENCE_H

#include "common/Types.h"

#include <string>
#include <vector>

namespace hetsim {

/// Which machinery keeps a region coherent.
enum class CoherenceDomain : uint8_t {
  Hardware, ///< MESI directory tracks the region's lines.
  Software, ///< Runtime flush/invalidate discipline; directory ignores it.
};

const char *coherenceDomainName(CoherenceDomain Domain);

/// Statistics of domain activity.
struct HybridCoherenceStats {
  uint64_t Transitions = 0;
  uint64_t LinesTransitioned = 0;
  uint64_t HardwareLookups = 0;
  uint64_t SoftwareLookups = 0;
};

/// The per-region domain map.
class HybridCoherenceMap {
public:
  /// Regions not covered by any assignment default to \p Default.
  explicit HybridCoherenceMap(
      CoherenceDomain Fallback = CoherenceDomain::Hardware)
      : Default(Fallback) {}

  /// Assigns [Base, Base+Bytes) to \p Domain (overrides earlier
  /// assignments for addresses it covers).
  void assign(Addr Base, uint64_t Bytes, CoherenceDomain Domain);

  /// Domain of \p Address (the most recent covering assignment).
  CoherenceDomain domainOf(Addr Address) const;

  /// Counts a coherence consultation for \p Address and returns true if
  /// the hardware directory should handle it.
  bool consult(Addr Address);

  /// Migrates [Base, Base+Bytes) to \p To. Returns the transition cost
  /// in cycles: per-line bookkeeping (tag updates / lazy table walks,
  /// Cohesion's per-line transition work) — callers add writeback costs
  /// for dirty lines separately.
  Cycle transition(Addr Base, uint64_t Bytes, CoherenceDomain To,
                   Cycle CyclesPerLine = 4);

  const HybridCoherenceStats &stats() const { return Stats; }

  size_t assignmentCount() const { return Assignments.size(); }

private:
  struct Assignment {
    Addr Base;
    uint64_t Bytes;
    CoherenceDomain Domain;
  };

  CoherenceDomain Default;
  std::vector<Assignment> Assignments; // Later entries override earlier.
  HybridCoherenceStats Stats;
};

} // namespace hetsim

#endif // HETSIM_MEMORY_HYBRIDCOHERENCE_H
