//===- memory/SoftwareCoherence.cpp ---------------------------------------===//

#include "memory/SoftwareCoherence.h"

#include "common/Error.h"

using namespace hetsim;

const char *hetsim::swCohStateName(SwCohState State) {
  switch (State) {
  case SwCohState::HostValid:
    return "host-valid";
  case SwCohState::AccValid:
    return "acc-valid";
  case SwCohState::BothValid:
    return "both-valid";
  }
  hetsim_unreachable("invalid software-coherence state");
}

SoftwareCoherence::Object &SoftwareCoherence::find(const std::string &Name) {
  for (Object &O : Objects)
    if (O.Name == Name)
      return O;
  fatalError(("software coherence: unknown object " + Name).c_str());
}

const SoftwareCoherence::Object &
SoftwareCoherence::find(const std::string &Name) const {
  return const_cast<SoftwareCoherence *>(this)->find(Name);
}

void SoftwareCoherence::registerObject(const std::string &Name,
                                       uint64_t Bytes, SwCohState Initial) {
  for (const Object &O : Objects)
    if (O.Name == Name)
      fatalError(("software coherence: object registered twice: " + Name)
                     .c_str());
  Objects.push_back({Name, Bytes, Initial});
}

uint64_t SoftwareCoherence::onAccAccess(const std::string &Name,
                                        bool IsWrite) {
  Object &O = find(Name);
  uint64_t Moved = 0;
  switch (O.State) {
  case SwCohState::HostValid:
    // Stale accelerator copy: the runtime copies in.
    Moved = O.Bytes;
    ++Stats.HostToDevTransfers;
    Stats.BytesMoved += Moved;
    break;
  case SwCohState::AccValid:
  case SwCohState::BothValid:
    ++Stats.AvoidedTransfers;
    break;
  }
  O.State = IsWrite ? SwCohState::AccValid : SwCohState::BothValid;
  return Moved;
}

uint64_t SoftwareCoherence::onHostAccess(const std::string &Name,
                                         bool IsWrite) {
  Object &O = find(Name);
  uint64_t Moved = 0;
  switch (O.State) {
  case SwCohState::AccValid:
    Moved = O.Bytes;
    ++Stats.DevToHostTransfers;
    Stats.BytesMoved += Moved;
    break;
  case SwCohState::HostValid:
  case SwCohState::BothValid:
    ++Stats.AvoidedTransfers;
    break;
  }
  O.State = IsWrite ? SwCohState::HostValid : SwCohState::BothValid;
  return Moved;
}

void SoftwareCoherence::onAccOverwrite(const std::string &Name) {
  Object &O = find(Name);
  if (O.State != SwCohState::AccValid)
    ++Stats.AvoidedTransfers;
  O.State = SwCohState::AccValid;
}

SwCohState SoftwareCoherence::state(const std::string &Name) const {
  return find(Name).State;
}

void SoftwareCoherence::clear() {
  Objects.clear();
  Stats = SwCohStats();
}
