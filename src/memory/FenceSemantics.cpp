//===- memory/FenceSemantics.cpp ------------------------------------------===//

#include "memory/FenceSemantics.h"

using namespace hetsim;

FenceSemantics FenceSemantics::make(AddressSpaceKind Space, bool UseOwnership,
                                    bool UseAsyncCopies,
                                    ConsistencyModel Model) {
  FenceSemantics F;
  F.AddrSpace = Space;
  F.Consistency = Model;
  F.OwnershipRequired = UseOwnership;
  F.LaunchOrdersSharedRegion = !UseOwnership;
  F.AsyncCopies = UseAsyncCopies;
  F.LazySerialPull = Space == AddressSpaceKind::Adsm;
  switch (Space) {
  case AddressSpaceKind::Unified:
    F.TransferInst = SpecialInst::None;
    break;
  case AddressSpaceKind::Disjoint:
  case AddressSpaceKind::Adsm:
    F.TransferInst = SpecialInst::ApiPci;
    break;
  case AddressSpaceKind::PartiallyShared:
    F.TransferInst = SpecialInst::ApiTr;
    break;
  }
  return F;
}

std::string FenceSemantics::missingEdgeHint(bool SharedRegionLocation,
                                            bool DmaInvolved) const {
  if (DmaInvolved) {
    std::string Hint = "dma-wait draining the in-flight ";
    Hint += specialInstName(TransferInst == SpecialInst::None
                                ? SpecialInst::DmaWait
                                : TransferInst);
    Hint += " copy (or a kernel launch that synchronizes the engine)";
    return Hint;
  }
  if (SharedRegionLocation && OwnershipRequired)
    return "api-acq release/acquire transferring ownership of the shared "
           "region between the PUs";
  return "kernel launch/join edge (or an explicit release/acquire pair) "
         "between the two accesses";
}
