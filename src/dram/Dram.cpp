//===- dram/Dram.cpp ------------------------------------------------------===//

#include "dram/Dram.h"

#include "common/Error.h"

#include <algorithm>
#include <cassert>

using namespace hetsim;

DramSystem::DramSystem(const DramConfig &Cfg) : Config(Cfg) {
  if (!Cfg.isValid())
    fatalError("invalid DRAM configuration");
  Banks.resize(uint64_t(Cfg.Channels) * Cfg.BanksPerChannel);
  ChannelBusFree.resize(Cfg.Channels, 0);
}

unsigned DramSystem::channelOf(Addr LineAddress) const {
  // Interleave channels at line granularity for bandwidth.
  return unsigned((LineAddress >> log2Exact(CacheLineBytes)) &
                  (Config.Channels - 1));
}

unsigned DramSystem::bankOf(Addr LineAddress) const {
  unsigned Shift = log2Exact(CacheLineBytes) + log2Exact(Config.Channels);
  return unsigned((LineAddress >> Shift) & (Config.BanksPerChannel - 1));
}

uint64_t DramSystem::rowOf(Addr LineAddress) const {
  unsigned Shift = log2Exact(CacheLineBytes) + log2Exact(Config.Channels) +
                   log2Exact(Config.BanksPerChannel);
  return (LineAddress >> Shift) / (Config.RowBytes / CacheLineBytes);
}

DramSystem::Bank &DramSystem::bank(Addr LineAddress) {
  return Banks[channelOf(LineAddress) * Config.BanksPerChannel +
               bankOf(LineAddress)];
}

Cycle DramSystem::access(Addr LineAddress, Cycle Now, bool IsWrite) {
  return accessImpl(LineAddress, Now, IsWrite, /*CapQueue=*/true);
}

Cycle DramSystem::accessUncapped(Addr LineAddress, Cycle Now, bool IsWrite) {
  return accessImpl(LineAddress, Now, IsWrite, /*CapQueue=*/false);
}

Cycle DramSystem::accessImpl(Addr LineAddress, Cycle Now, bool IsWrite,
                             bool CapQueue) {
  Bank &B = bank(LineAddress);
  unsigned Channel = channelOf(LineAddress);
  uint64_t Row = rowOf(LineAddress);

  Cycle BankFree =
      CapQueue ? std::min(B.ReadyAt, Now + Config.MaxQueueDelay) : B.ReadyAt;
  Cycle Start = std::max(Now, BankFree);
  Cycle ArrayLatency;
  if (B.OpenRow == Row) {
    ++Stats.RowHits;
    ArrayLatency = Config.RowHitLatency;
  } else {
    ++Stats.RowMisses;
    // Open-page pays precharge + activate + CAS on a conflict; a
    // closed-page bank is already precharged, so only activate + CAS.
    ArrayLatency = Config.ClosedPage
                       ? (Config.RowMissLatency + Config.RowHitLatency) / 2
                       : Config.RowMissLatency;
    B.OpenRow = Row;
  }
  if (Config.ClosedPage)
    B.OpenRow = ~0ull; // Auto-precharge after the access.

  Cycle ArrayDone = Start + ArrayLatency;
  Cycle BusFree = CapQueue ? std::min(ChannelBusFree[Channel],
                                      ArrayDone + Config.MaxQueueDelay)
                           : ChannelBusFree[Channel];
  Cycle DataStart = std::max(ArrayDone, BusFree);
  Cycle Done = DataStart + Config.BusCyclesPerLine;
  ChannelBusFree[Channel] = Done;
  B.ReadyAt = Start + ArrayLatency;

  if (IsWrite)
    ++Stats.Writes;
  else
    ++Stats.Reads;
  Stats.BytesTransferred += CacheLineBytes;
  return Done;
}

void DramSystem::enqueue(Addr LineAddress, bool IsWrite) {
  Queue.push_back({LineAddress, IsWrite});
  Stats.PeakQueueDepth = std::max(Stats.PeakQueueDepth, uint64_t(Queue.size()));
}

Cycle DramSystem::drainFrFcfs(Cycle Now) {
  Cycle Finish = Now;
  std::vector<Request> Pending;
  Pending.swap(Queue);
  if (!Pending.empty()) {
    ++Stats.BatchDrains;
    Stats.BatchedRequests += Pending.size();
  }

  // Address decode (bank index, row) is loop-invariant per request, so
  // compute it once up front instead of re-dividing on every first-ready
  // scan; the scans then compare a cached row against the bank's OpenRow.
  struct Decoded {
    uint64_t Row;
    uint32_t BankIndex;
    bool Serviced;
  };
  std::vector<Decoded> Info(Pending.size());
  for (size_t I = 0; I != Pending.size(); ++I) {
    Addr Line = Pending[I].LineAddress;
    Info[I] = {rowOf(Line),
               uint32_t(channelOf(Line) * Config.BanksPerChannel +
                        bankOf(Line)),
               false};
  }

  size_t Remaining = Pending.size();
  size_t FirstAlive = 0; // Oldest unserviced request: the FCFS fallback.

  while (Remaining != 0) {
    while (FirstAlive != Pending.size() && Info[FirstAlive].Serviced)
      ++FirstAlive;
    // First-ready: oldest request whose bank has its row open; fall back
    // to first-come-first-served (the oldest alive request).
    size_t Pick = FirstAlive;
    for (size_t I = FirstAlive; I != Pending.size(); ++I) {
      if (Info[I].Serviced)
        continue;
      if (Banks[Info[I].BankIndex].OpenRow == Info[I].Row) {
        Pick = I;
        break;
      }
    }
    assert(Pick != Pending.size() && "no request picked");
    Info[Pick].Serviced = true;
    --Remaining;
    Cycle Done = accessUncapped(Pending[Pick].LineAddress, Now,
                                Pending[Pick].IsWrite);
    Finish = std::max(Finish, Done);
  }
  return Finish;
}
