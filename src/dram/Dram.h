//===- dram/Dram.h - DDR3 timing model with FR-FCFS -------------*- C++ -*-===//
///
/// \file
/// DDR3-1333 main-memory model (Table II: 4 controllers, 41.6GB/s,
/// FR-FCFS). Banks keep an open row; row hits pay CAS only, row conflicts
/// pay precharge + activate + CAS. Single demand accesses use the
/// latency-walk path; bulk transfers (e.g. Fusion's memory-controller
/// communication) enqueue many requests and drain them under a genuine
/// first-ready, first-come-first-served schedule.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_DRAM_DRAM_H
#define HETSIM_DRAM_DRAM_H

#include "common/Types.h"

#include <vector>

namespace hetsim {

/// Geometry and timing of the DRAM system. Latencies are in uncore (CPU,
/// 3.5GHz) cycles; defaults correspond to DDR3-1333 9-9-9 (13.5ns per
/// stage) and a 10.4GB/s per-channel data bus.
struct DramConfig {
  unsigned Channels = 4;
  unsigned BanksPerChannel = 8;
  uint64_t RowBytes = 8192;
  Cycle RowHitLatency = 47;   ///< CAS only (~13.5ns).
  Cycle RowMissLatency = 142; ///< tRP + tRCD + CAS (~40.5ns).
  Cycle BusCyclesPerLine = 22; ///< 64B burst on one channel (~6.2ns).
  /// Maximum queueing delay one request can inherit from bank/bus
  /// busy-until state. Requests arrive from loosely synchronized
  /// timelines (e.g. independent GPU warps); the cap keeps bounded clock
  /// skew from turning into unbounded artificial queueing while still
  /// modeling contention up to a realistic controller queue depth.
  Cycle MaxQueueDelay = 200;

  /// Closed-page policy: precharge after every access, so every access
  /// pays the full activate+CAS path but never a row conflict. The
  /// baseline (and FR-FCFS) assumes open-page.
  bool ClosedPage = false;

  bool isValid() const {
    return Channels > 0 && isPowerOf2(Channels) && BanksPerChannel > 0 &&
           isPowerOf2(BanksPerChannel) && isPowerOf2(RowBytes);
  }
};

/// Statistics of DRAM activity.
struct DramStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t RowHits = 0;
  uint64_t RowMisses = 0;
  uint64_t BytesTransferred = 0;
  uint64_t BatchDrains = 0;      ///< drainFrFcfs() calls that did work.
  uint64_t BatchedRequests = 0;  ///< Requests serviced by batch drains.
  uint64_t PeakQueueDepth = 0;   ///< High-water mark of the batch queue.

  double rowHitRate() const {
    uint64_t Total = RowHits + RowMisses;
    return Total == 0 ? 0.0 : double(RowHits) / double(Total);
  }
};

/// The DRAM system: channels x banks with open-row state.
class DramSystem {
public:
  explicit DramSystem(const DramConfig &Config = DramConfig());

  const DramConfig &config() const { return Config; }
  const DramStats &stats() const { return Stats; }

  /// Services one 64B line access arriving at \p Now. Returns the cycle at
  /// which data is available.
  Cycle access(Addr LineAddress, Cycle Now, bool IsWrite);

  /// Enqueues a line access for batch scheduling.
  void enqueue(Addr LineAddress, bool IsWrite);

  /// Number of requests waiting in the batch queue.
  size_t queuedRequests() const { return Queue.size(); }

  /// Drains the batch queue under FR-FCFS starting at \p Now: the scheduler
  /// repeatedly services the oldest row-hit request, falling back to the
  /// oldest request when no queued request hits an open row. Returns the
  /// cycle at which the last request completes.
  Cycle drainFrFcfs(Cycle Now);

  /// Like access(), but without the MaxQueueDelay cap: batch drains
  /// present genuinely long queues with consistent timestamps, so their
  /// queueing is real and must be charged in full.
  Cycle accessUncapped(Addr LineAddress, Cycle Now, bool IsWrite);

  /// Channel index a line maps to (exposed for tests).
  unsigned channelOf(Addr LineAddress) const;
  /// Bank index (within its channel) a line maps to.
  unsigned bankOf(Addr LineAddress) const;
  /// Row number a line maps to.
  uint64_t rowOf(Addr LineAddress) const;

  void resetStats() { Stats = DramStats(); }

  /// Full-state snapshot for the memory-phase fold verifier (DESIGN.md
  /// §11): open rows, per-bank/bus busy-until cycles, queue depth, and
  /// counters. The verifier requires the batch queue empty at snapshot
  /// boundaries (demand walks always drain before returning).
  struct FoldSnap {
    std::vector<uint64_t> OpenRows;
    std::vector<Cycle> ReadyAt;
    std::vector<Cycle> BusFree;
    size_t Queued = 0;
    DramStats Stats;
  };

  FoldSnap foldSnapshot() const {
    FoldSnap S;
    S.OpenRows.reserve(Banks.size());
    S.ReadyAt.reserve(Banks.size());
    for (const Bank &B : Banks) {
      S.OpenRows.push_back(B.OpenRow);
      S.ReadyAt.push_back(B.ReadyAt);
    }
    S.BusFree = ChannelBusFree;
    S.Queued = Queue.size();
    S.Stats = Stats;
    return S;
  }

  /// Advances bank/bus busy-until cycles and counters by Rem times their
  /// per-window delta (\p S3 minus \p S2).
  void applyFold(const FoldSnap &S2, const FoldSnap &S3, uint64_t Rem) {
    for (size_t I = 0; I != Banks.size(); ++I)
      Banks[I].ReadyAt += (S3.ReadyAt[I] - S2.ReadyAt[I]) * Rem;
    for (size_t I = 0; I != ChannelBusFree.size(); ++I)
      ChannelBusFree[I] += (S3.BusFree[I] - S2.BusFree[I]) * Rem;
    Stats.Reads += (S3.Stats.Reads - S2.Stats.Reads) * Rem;
    Stats.Writes += (S3.Stats.Writes - S2.Stats.Writes) * Rem;
    Stats.RowHits += (S3.Stats.RowHits - S2.Stats.RowHits) * Rem;
    Stats.RowMisses += (S3.Stats.RowMisses - S2.Stats.RowMisses) * Rem;
    Stats.BytesTransferred +=
        (S3.Stats.BytesTransferred - S2.Stats.BytesTransferred) * Rem;
    // BatchDrains/BatchedRequests/PeakQueueDepth: the verifier requires
    // zero batch activity inside a foldable window, so nothing to scale.
  }

private:
  struct Bank {
    uint64_t OpenRow = ~0ull;
    Cycle ReadyAt = 0;
  };

  Bank &bank(Addr LineAddress);
  Cycle accessImpl(Addr LineAddress, Cycle Now, bool IsWrite, bool CapQueue);

  struct Request {
    Addr LineAddress;
    bool IsWrite;
  };

  DramConfig Config;
  DramStats Stats;
  std::vector<Bank> Banks;          // Channels x BanksPerChannel.
  std::vector<Cycle> ChannelBusFree; // Next free cycle per channel bus.
  std::vector<Request> Queue;
};

} // namespace hetsim

#endif // HETSIM_DRAM_DRAM_H
