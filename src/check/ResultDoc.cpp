//===- check/ResultDoc.cpp ------------------------------------------------===//

#include "check/ResultDoc.h"

#include "common/StringUtil.h"
#include "common/TextTable.h"
#include "obs/Json.h"
#include "obs/Metrics.h"

#include <cctype>
#include <cstdlib>

using namespace hetsim;

namespace {

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string::npos) {
      if (Start < Text.size())
        Lines.push_back(Text.substr(Start));
      break;
    }
    Lines.push_back(Text.substr(Start, End - Start));
    Start = End + 1;
  }
  return Lines;
}

std::string trimCopy(const std::string &Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

/// Splits a row of an aligned table on runs of two or more spaces.
std::vector<std::string> splitColumns(const std::string &Line) {
  std::vector<std::string> Cells;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && Line[I] == ' ')
      ++I;
    if (I >= Line.size())
      break;
    size_t Start = I;
    // A cell ends at a run of >=2 spaces (or end of line); single spaces
    // belong to the cell ("merge sort", "parallel->merge->sequential").
    while (I < Line.size()) {
      if (Line[I] == ' ' && I + 1 < Line.size() && Line[I + 1] == ' ')
        break;
      if (Line[I] == ' ' && I + 1 == Line.size())
        break;
      ++I;
    }
    Cells.push_back(Line.substr(Start, I - Start));
  }
  return Cells;
}

bool isSeparatorLine(const std::string &Line) {
  std::string Trimmed = trimCopy(Line);
  if (Trimmed.size() < 4)
    return false;
  for (char C : Trimmed)
    if (C != '-')
      return false;
  return true;
}

bool isAllDigits(const std::string &Text) {
  if (Text.empty())
    return false;
  for (char C : Text)
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
  return true;
}

/// Builds a row from named cells; the label joins the text cells.
ResultRow makeRow(const std::vector<std::string> &Names,
                  const std::vector<std::string> &Cells) {
  ResultRow Row;
  std::string Label;
  for (size_t I = 0; I != Cells.size(); ++I) {
    std::string Name = I < Names.size() ? Names[I]
                                        : "col" + std::to_string(I);
    ResultValue Value = parseResultValue(Cells[I]);
    if (!Value.IsNumber) {
      if (!Label.empty())
        Label += '/';
      Label += Value.Text;
    }
    Row.Fields.emplace_back(std::move(Name), std::move(Value));
  }
  if (Label.empty())
    Label = Row.Fields.empty() ? "(empty)" : Row.Fields.front().second.Text;
  Row.Label = std::move(Label);
  return Row;
}

/// Splits one CSV line (no quoting — the harness never emits quotes).
std::vector<std::string> splitCsvLine(const std::string &Line) {
  std::vector<std::string> Cells = splitString(Line, ',');
  for (std::string &Cell : Cells)
    Cell = trimCopy(Cell);
  return Cells;
}

/// Repairs a CSV row whose unquoted thousands separators were split into
/// extra cells: while the row is too wide, re-joins a digit cell with a
/// following exactly-3-digit cell ("480" + "768" -> "480,768").
void mergeThousandsSplits(std::vector<std::string> &Cells, size_t Want) {
  while (Cells.size() > Want) {
    bool Merged = false;
    for (size_t I = 0; I + 1 < Cells.size(); ++I) {
      if (isAllDigits(Cells[I]) && Cells[I + 1].size() == 3 &&
          isAllDigits(Cells[I + 1])) {
        Cells[I] += "," + Cells[I + 1];
        Cells.erase(Cells.begin() + static_cast<long>(I) + 1);
        Merged = true;
        break;
      }
    }
    if (!Merged)
      return;
  }
}

} // namespace

ResultValue hetsim::parseResultValue(const std::string &Cell) {
  ResultValue Value;
  Value.Text = trimCopy(Cell);
  if (Value.Text.empty())
    return Value;

  std::string Numeric = Value.Text;
  if (Numeric.back() == '%')
    Numeric.pop_back();
  // Strip thousands separators; reject stray leading/trailing commas.
  if (Numeric.empty() || Numeric.front() == ',' || Numeric.back() == ',')
    return Value;
  std::string Stripped;
  Stripped.reserve(Numeric.size());
  for (char C : Numeric)
    if (C != ',')
      Stripped += C;
  if (Stripped.empty())
    return Value;

  const char *Begin = Stripped.c_str();
  char *End = nullptr;
  double Number = std::strtod(Begin, &End);
  if (End == Begin || *End != '\0')
    return Value;
  Value.IsNumber = true;
  Value.Number = Number;
  return Value;
}

const ResultValue *ResultRow::find(const std::string &Field) const {
  for (const auto &Entry : Fields)
    if (Entry.first == Field)
      return &Entry.second;
  return nullptr;
}

ResultDoc ResultDoc::fromCsv(const std::string &Name,
                             const std::string &Text) {
  ResultDoc Doc;
  Doc.Name = Name;
  std::vector<std::string> Lines = splitLines(Text);
  if (Lines.empty())
    return Doc;

  std::vector<std::string> Headers = splitCsvLine(Lines.front());
  for (size_t I = 1; I != Lines.size(); ++I) {
    if (trimCopy(Lines[I]).empty())
      continue;
    std::vector<std::string> Cells = splitCsvLine(Lines[I]);
    mergeThousandsSplits(Cells, Headers.size());
    if (Cells.size() == Headers.size())
      Doc.Rows.push_back(makeRow(Headers, Cells));
    else
      Doc.Prose.push_back(Lines[I]);
  }
  return Doc;
}

ResultDoc ResultDoc::fromArtifactText(const std::string &Name,
                                      const std::string &Text) {
  ResultDoc Doc;
  Doc.Name = Name;
  std::vector<std::string> Lines = splitLines(Text);

  size_t I = 0;
  while (I < Lines.size()) {
    // A table starts at a header line directly followed by a dashes line.
    if (I + 1 < Lines.size() && !trimCopy(Lines[I]).empty() &&
        isSeparatorLine(Lines[I + 1])) {
      std::vector<std::string> Headers = splitColumns(Lines[I]);
      I += 2;
      while (I < Lines.size() && !trimCopy(Lines[I]).empty()) {
        std::vector<std::string> Cells = splitColumns(Lines[I]);
        if (Cells.size() == Headers.size())
          Doc.Rows.push_back(makeRow(Headers, Cells));
        else
          Doc.Prose.push_back(Lines[I]);
        ++I;
      }
      continue;
    }
    Doc.Prose.push_back(Lines[I]);
    ++I;
  }
  return Doc;
}

bool ResultDoc::fromMetricsJson(const std::string &Name,
                                const std::string &Text, ResultDoc &Out,
                                std::string &Error) {
  if (!validateMetricsJson(Text, Error))
    return false;
  JsonValue Doc;
  if (!parseJson(Text, Doc, Error))
    return false;

  Out = ResultDoc();
  Out.Name = Name;

  auto AddPoint = [&Out](const std::string &Label, const JsonValue &Metrics) {
    ResultRow Row;
    Row.Label = Label;
    for (const auto &Member : Metrics.Members) {
      ResultValue Value;
      Value.IsNumber = Member.second.isNumber();
      Value.Number = Member.second.NumberValue;
      Value.Text = Member.second.isString() ? Member.second.StringValue : "";
      Row.Fields.emplace_back(Member.first, std::move(Value));
    }
    Out.Rows.push_back(std::move(Row));
  };

  if (const JsonValue *Metrics = Doc.find("metrics")) {
    AddPoint("run", *Metrics);
    return true;
  }
  const JsonValue *Sweep = Doc.find("points");
  for (size_t I = 0; I != Sweep->Elements.size(); ++I) {
    const JsonValue &Point = Sweep->Elements[I];
    std::string Label = "point" + std::to_string(I);
    const JsonValue *System = Point.find("system");
    const JsonValue *Kernel = Point.find("kernel");
    if (System && System->isString() && Kernel && Kernel->isString())
      Label = System->StringValue + "/" + Kernel->StringValue;
    AddPoint(Label, *Point.find("metrics"));
  }
  return true;
}

ResultDoc ResultDoc::fromTextTable(const std::string &Name,
                                   const TextTable &Table) {
  ResultDoc Doc;
  Doc.Name = Name;
  for (const std::vector<std::string> &Cells : Table.rows())
    Doc.Rows.push_back(makeRow(Table.headers(), Cells));
  return Doc;
}

bool ResultDoc::load(const std::string &Name, const std::string &Path,
                     ResultDoc &Out, std::string &Error) {
  std::string Text;
  if (!readTextFile(Path, Text)) {
    Error = "cannot read " + Path;
    return false;
  }
  if (Name.size() > 5 && Name.rfind(".json") == Name.size() - 5)
    return fromMetricsJson(Name, Text, Out, Error);
  if (Name.size() > 4 && Name.rfind(".csv") == Name.size() - 4) {
    Out = fromCsv(Name, Text);
    return true;
  }
  Out = fromArtifactText(Name, Text);
  return true;
}
