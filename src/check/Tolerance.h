//===- check/Tolerance.h - Per-metric comparison tolerances -----*- C++ -*-===//
///
/// \file
/// Tolerance policy for the comparison engine. A value passes when its
/// absolute delta is within max(Abs, Rel * |reference|); the spec holds
/// a default plus an ordered rule list matched by (document, field)
/// glob patterns, last match winning, so `refs/tolerances.cfg` can keep
/// the default tight and loosen exactly the tables that need it.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CHECK_TOLERANCE_H
#define HETSIM_CHECK_TOLERANCE_H

#include <string>
#include <vector>

namespace hetsim {

/// One tolerance band. Boundary values pass (<=, not <).
struct Tolerance {
  double Abs = 0;
  double Rel = 0;

  /// True when |Actual - Reference| is within the band.
  bool accepts(double Reference, double Actual) const;
};

/// One cfg rule: `rule <doc-glob> <field-glob> [abs=X] [rel=Y]`.
struct ToleranceRule {
  std::string DocPattern;
  std::string FieldPattern;
  Tolerance Tol;
};

/// Matches \p Pattern against \p Text; '*' matches any (possibly empty)
/// substring, all other characters literally.
bool globMatch(const std::string &Pattern, const std::string &Text);

/// The tolerance policy of one diff run.
class ToleranceSpec {
public:
  Tolerance Default;
  std::vector<ToleranceRule> Rules;

  /// Returns the band for (doc, field): the last matching rule, or the
  /// default when none matches.
  Tolerance lookup(const std::string &Doc, const std::string &Field) const;

  /// Parses cfg text: `default [abs=X] [rel=Y]` and rule lines as above;
  /// '#' starts a comment. Returns false and sets \p Error (with a line
  /// number) on malformed input.
  bool parse(const std::string &Text, std::string &Error);

  /// Reads and parses \p Path.
  static bool loadFile(const std::string &Path, ToleranceSpec &Out,
                       std::string &Error);
};

} // namespace hetsim

#endif // HETSIM_CHECK_TOLERANCE_H
