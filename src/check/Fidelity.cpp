//===- check/Fidelity.cpp -------------------------------------------------===//

#include "check/Fidelity.h"

#include "obs/Json.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

using namespace hetsim;

const char *hetsim::fidelityOpName(FidelityOp Op) {
  switch (Op) {
  case FidelityOp::Eq:
    return "==";
  case FidelityOp::Le:
    return "<=";
  case FidelityOp::Ge:
    return ">=";
  case FidelityOp::Lt:
    return "<";
  case FidelityOp::Gt:
    return ">";
  }
  return "?";
}

namespace {

bool opFromToken(const std::string &Token, FidelityOp &Op) {
  if (Token == "==" || Token == "=")
    Op = FidelityOp::Eq;
  else if (Token == "<=")
    Op = FidelityOp::Le;
  else if (Token == ">=")
    Op = FidelityOp::Ge;
  else if (Token == "<")
    Op = FidelityOp::Lt;
  else if (Token == ">")
    Op = FidelityOp::Gt;
  else
    return false;
  return true;
}

bool parseNumberToken(const std::string &Text, double &Out) {
  const char *Begin = Text.c_str();
  char *End = nullptr;
  Out = std::strtod(Begin, &End);
  return End != Begin && *End == '\0';
}

std::string trimCopy(const std::string &Text) {
  size_t Begin = Text.find_first_not_of(" \t");
  if (Begin == std::string::npos)
    return "";
  size_t End = Text.find_last_not_of(" \t");
  return Text.substr(Begin, End - Begin + 1);
}

/// Splits on the literal separator " :: ".
std::vector<std::string> splitParts(const std::string &Line) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Line.find(" :: ", Start);
    if (Pos == std::string::npos) {
      Parts.push_back(trimCopy(Line.substr(Start)));
      return Parts;
    }
    Parts.push_back(trimCopy(Line.substr(Start, Pos - Start)));
    Start = Pos + 4;
  }
}

/// Finds the earliest operator token of the form " <op> " in \p Text at
/// or after \p From; longest match wins at a given position.
bool findOpToken(const std::string &Text, size_t From, size_t &Pos,
                 size_t &Len, FidelityOp &Op) {
  static const struct {
    const char *Token;
    FidelityOp Op;
  } Table[] = {{" <= ", FidelityOp::Le}, {" >= ", FidelityOp::Ge},
               {" == ", FidelityOp::Eq}, {" < ", FidelityOp::Lt},
               {" > ", FidelityOp::Gt}};
  Pos = std::string::npos;
  for (const auto &Entry : Table) {
    size_t Found = Text.find(Entry.Token, From);
    if (Found == std::string::npos)
      continue;
    size_t TokenLen = std::char_traits<char>::length(Entry.Token);
    // Prefer the earliest position; at equal positions prefer the longer
    // token (" <= " starts where " < " would also match).
    if (Found < Pos || (Found == Pos && TokenLen > Len)) {
      Pos = Found;
      Len = TokenLen;
      Op = Entry.Op;
    }
  }
  return Pos != std::string::npos;
}

/// Parses the tail of a value check: "<field> <op> <number> [abs=] [rel=]".
bool parseValueTail(const std::string &Tail, FidelityCheck &Check,
                    std::string &Error) {
  std::istringstream Stream(Tail);
  std::vector<std::string> Words;
  std::string Word;
  while (Stream >> Word)
    Words.push_back(Word);

  // Band tokens sit at the end.
  size_t End = Words.size();
  auto IsBand = [](const std::string &Token) {
    return Token.rfind("abs=", 0) == 0 || Token.rfind("rel=", 0) == 0;
  };
  while (End > 0 && IsBand(Words[End - 1]))
    --End;
  for (size_t I = End; I != Words.size(); ++I) {
    double Value = 0;
    if (!parseNumberToken(Words[I].substr(4), Value) || Value < 0) {
      Error = "bad band token '" + Words[I] + "'";
      return false;
    }
    if (Words[I][0] == 'a')
      Check.Band.Abs = Value;
    else
      Check.Band.Rel = Value;
  }

  if (End < 3) {
    Error = "value check needs '<field> <op> <number>'";
    return false;
  }
  if (!parseNumberToken(Words[End - 1], Check.Expected)) {
    Error = "bad expected number '" + Words[End - 1] + "'";
    return false;
  }
  if (!opFromToken(Words[End - 2], Check.Op)) {
    Error = "bad operator '" + Words[End - 2] + "'";
    return false;
  }
  for (size_t I = 0; I + 2 != End; ++I) {
    if (I != 0)
      Check.Field += ' ';
    Check.Field += Words[I];
  }
  return true;
}

/// Parses the tail of a trend check: "<rowA> <op> <rowB> [<op> <rowC>...]".
bool parseTrendTail(const std::string &Tail, FidelityCheck &Check,
                    std::string &Error) {
  size_t From = 0;
  while (true) {
    size_t Pos = 0, Len = 0;
    FidelityOp Op = FidelityOp::Lt;
    if (!findOpToken(Tail, From, Pos, Len, Op)) {
      std::string Last = trimCopy(Tail.substr(From));
      if (Last.empty()) {
        Error = "trend ends with an operator";
        return false;
      }
      Check.TrendRows.push_back(Last);
      break;
    }
    std::string Row = trimCopy(Tail.substr(From, Pos - From));
    if (Row.empty()) {
      Error = "trend has an empty row selector";
      return false;
    }
    Check.TrendRows.push_back(Row);
    Check.TrendOps.push_back(Op);
    From = Pos + Len;
  }
  if (Check.TrendRows.size() < 2) {
    Error = "trend needs at least two rows joined by an operator";
    return false;
  }
  return true;
}

/// First row whose label equals \p Selector or starts with it + '/',
/// preferring rows that carry \p Field: an artifact can hold several
/// tables whose rows share kernel labels but differ in columns.
const ResultRow *selectRow(const ResultDoc &Doc, const std::string &Selector,
                           const std::string &Field) {
  const ResultRow *FirstLabelMatch = nullptr;
  for (const ResultRow &Row : Doc.Rows) {
    bool Matches =
        Row.Label == Selector ||
        (Row.Label.size() > Selector.size() &&
         Row.Label.compare(0, Selector.size(), Selector) == 0 &&
         Row.Label[Selector.size()] == '/');
    if (!Matches)
      continue;
    if (Row.find(Field))
      return &Row;
    if (!FirstLabelMatch)
      FirstLabelMatch = &Row;
  }
  return FirstLabelMatch;
}

bool opHolds(FidelityOp Op, double Lhs, double Rhs, const Tolerance &Band) {
  switch (Op) {
  case FidelityOp::Eq:
    return Band.accepts(Rhs, Lhs);
  case FidelityOp::Le:
    return Lhs <= Rhs;
  case FidelityOp::Ge:
    return Lhs >= Rhs;
  case FidelityOp::Lt:
    return Lhs < Rhs;
  case FidelityOp::Gt:
    return Lhs > Rhs;
  }
  return false;
}

/// Resolves one selector's field value; records a violation otherwise.
bool resolveValue(const FidelityCheck &Check, const ResultDoc &Doc,
                  const std::string &Selector, double &Out,
                  DiffReport &Report) {
  const ResultRow *Row = selectRow(Doc, Selector, Check.Field);
  DiffEntry Entry;
  Entry.Doc = Check.Doc;
  Entry.Row = Selector;
  Entry.Field = Check.Field;
  Entry.Detail = Check.Source;
  if (!Row) {
    Entry.Kind = DiffKind::MissingRow;
    Entry.Detail = "no row matches selector (" + Check.Source + ")";
    Report.Entries.push_back(std::move(Entry));
    return false;
  }
  const ResultValue *Value = Row->find(Check.Field);
  if (!Value || !Value->IsNumber) {
    Entry.Kind = DiffKind::MissingField;
    Entry.Row = Row->Label;
    Entry.Detail = std::string(Value ? "field is not numeric"
                                     : "field is missing") +
                   " (" + Check.Source + ")";
    Report.Entries.push_back(std::move(Entry));
    return false;
  }
  Out = Value->Number;
  return true;
}

} // namespace

bool FidelitySet::parse(const std::string &Text, std::string &Error) {
  Checks.clear();
  std::istringstream Stream(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    std::string Trimmed = trimCopy(Line);
    // Whole-line comments only: column names contain '#' ("#inst CPU"),
    // so a mid-line '#' is data.
    if (Trimmed.empty() || Trimmed[0] == '#')
      continue;

    auto Fail = [&](const std::string &Message) {
      Error = "fidelity line " + std::to_string(LineNo) + ": " + Message;
      return false;
    };

    std::vector<std::string> Parts = splitParts(Trimmed);
    if (Parts.size() != 3)
      return Fail("expected 3 fields separated by ' :: '");

    FidelityCheck Check;
    Check.LineNo = LineNo;
    Check.Source = Trimmed;

    std::istringstream Head(Parts[0]);
    std::string Kind;
    Head >> Kind >> Check.Doc;
    std::string Leftover;
    if (Check.Doc.empty() || (Head >> Leftover))
      return Fail("first field must be '<kind> <doc>'");

    if (Kind == "value") {
      Check.RowSelector = Parts[1];
      if (Check.RowSelector.empty())
        return Fail("empty row selector");
      std::string Message;
      if (!parseValueTail(Parts[2], Check, Message))
        return Fail(Message);
    } else if (Kind == "trend") {
      Check.IsTrend = true;
      Check.Field = Parts[1];
      if (Check.Field.empty())
        return Fail("empty field name");
      std::string Message;
      if (!parseTrendTail(Parts[2], Check, Message))
        return Fail(Message);
    } else {
      return Fail("unknown check kind '" + Kind + "'");
    }
    Checks.push_back(std::move(Check));
  }
  return true;
}

bool FidelitySet::loadFile(const std::string &Path, FidelitySet &Out,
                           std::string &Error) {
  std::string Text;
  if (!readTextFile(Path, Text)) {
    Error = "cannot read " + Path;
    return false;
  }
  return Out.parse(Text, Error);
}

DiffReport hetsim::evaluateFidelity(
    const FidelitySet &Set,
    const std::function<const ResultDoc *(const std::string &)> &DocLookup) {
  DiffReport Report;
  for (const FidelityCheck &Check : Set.Checks) {
    const ResultDoc *Doc = DocLookup(Check.Doc);
    if (!Doc) {
      DiffEntry Entry;
      Entry.Kind = DiffKind::MissingDoc;
      Entry.Doc = Check.Doc;
      Entry.Detail = "artifact unavailable (" + Check.Source + ")";
      Report.Entries.push_back(std::move(Entry));
      continue;
    }
    ++Report.RowsCompared;

    if (!Check.IsTrend) {
      double Actual = 0;
      if (!resolveValue(Check, *Doc, Check.RowSelector, Actual, Report))
        continue;
      ++Report.ValuesCompared;
      if (opHolds(Check.Op, Actual, Check.Expected, Check.Band))
        continue;
      DiffEntry Entry;
      Entry.Kind = DiffKind::FidelityValue;
      Entry.Doc = Check.Doc;
      Entry.Row = Check.RowSelector;
      Entry.Field = Check.Field;
      Entry.Reference = Check.Expected;
      Entry.Actual = Actual;
      Entry.AbsDelta = std::fabs(Actual - Check.Expected);
      Entry.RelDelta = Check.Expected != 0
                           ? Entry.AbsDelta / std::fabs(Check.Expected)
                           : Entry.AbsDelta;
      Entry.Allowed = Check.Band;
      Entry.Detail = Check.Source;
      Report.Entries.push_back(std::move(Entry));
      continue;
    }

    // Trend: every adjacent pair must satisfy its operator.
    std::vector<double> Values(Check.TrendRows.size(), 0);
    bool Resolved = true;
    for (size_t I = 0; I != Check.TrendRows.size(); ++I)
      if (!resolveValue(Check, *Doc, Check.TrendRows[I], Values[I], Report))
        Resolved = false;
    if (!Resolved)
      continue;
    for (size_t I = 0; I + 1 != Values.size(); ++I) {
      ++Report.ValuesCompared;
      if (opHolds(Check.TrendOps[I], Values[I], Values[I + 1], Tolerance()))
        continue;
      DiffEntry Entry;
      Entry.Kind = DiffKind::FidelityTrend;
      Entry.Doc = Check.Doc;
      Entry.Row = Check.TrendRows[I] + " " +
                  fidelityOpName(Check.TrendOps[I]) + " " +
                  Check.TrendRows[I + 1];
      Entry.Field = Check.Field;
      Entry.Reference = Values[I + 1];
      Entry.Actual = Values[I];
      Entry.Detail = "ordering violated: " + std::to_string(Values[I]) +
                     " vs " + std::to_string(Values[I + 1]) + " (" +
                     Check.Source + ")";
      Report.Entries.push_back(std::move(Entry));
    }
  }
  return Report;
}
