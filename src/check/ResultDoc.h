//===- check/ResultDoc.h - Structured result documents ----------*- C++ -*-===//
///
/// \file
/// The input side of the regression-check subsystem: every artifact the
/// experiment harness emits (aligned-text tables in `out/*.txt`, their
/// CSV exports, and the `hetsim-metrics-v1` / `hetsim-sweep-metrics-v1`
/// JSON documents) parses into one common shape — rows of named fields
/// whose cells are numeric wherever the text permits — so the comparison
/// engine can apply per-metric tolerances instead of byte-diffing.
///
/// Lines an artifact carries outside its tables (titles, ASCII charts,
/// footnotes) are kept verbatim as "prose" and must match exactly: they
/// are rendered from the same numbers at coarse granularity, so any
/// change there is a real drift.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CHECK_RESULTDOC_H
#define HETSIM_CHECK_RESULTDOC_H

#include <string>
#include <utility>
#include <vector>

namespace hetsim {

class TextTable;

/// One parsed cell. Numeric parsing accepts thousands separators
/// ("8,585,229") and a trailing percent sign ("30.7%" becomes 30.7 —
/// stripped, not divided); anything else stays text. The original cell
/// text is always preserved for exact comparison and reporting.
struct ResultValue {
  bool IsNumber = false;
  double Number = 0;
  std::string Text;
};

/// Parses \p Cell into a ResultValue (see the numeric rules above).
ResultValue parseResultValue(const std::string &Cell);

/// One table row: fields in column order, plus a label built by joining
/// the row's text-valued cells with '/' ("reduction/CPU+GPU"). Labels
/// identify rows across documents, so comparison is insensitive to row
/// reordering; duplicate labels pair up by occurrence index.
struct ResultRow {
  std::string Label;
  std::vector<std::pair<std::string, ResultValue>> Fields;

  /// Field lookup by column name; nullptr when absent.
  const ResultValue *find(const std::string &Field) const;
};

/// A structured view of one artifact.
class ResultDoc {
public:
  std::string Name;                ///< Artifact name ("fig5.csv").
  std::vector<ResultRow> Rows;     ///< All table rows, in file order.
  std::vector<std::string> Prose;  ///< Non-table lines, in file order.

  /// Parses a CSV export. Rows whose cell count exceeds the header's are
  /// repaired by re-joining thousands-separator splits ("480,768" was
  /// written unquoted); rows that still do not line up degrade to a
  /// single exact-match prose line.
  static ResultDoc fromCsv(const std::string &Name, const std::string &Text);

  /// Parses an aligned-text artifact: every header line followed by a
  /// dashed separator starts a table whose columns split on runs of two
  /// or more spaces; the table ends at the first blank line. Everything
  /// else is prose.
  static ResultDoc fromArtifactText(const std::string &Name,
                                    const std::string &Text);

  /// Parses a `hetsim-metrics-v1` or `hetsim-sweep-metrics-v1` document.
  /// Single-run documents yield one row labelled "run"; sweep documents
  /// yield one row per point labelled "<system>/<kernel>". Returns false
  /// and sets \p Error on schema or syntax violations.
  static bool fromMetricsJson(const std::string &Name, const std::string &Text,
                              ResultDoc &Out, std::string &Error);

  /// Builds a doc straight from an in-memory TextTable, so a sweep can
  /// be compared against a golden without touching the filesystem.
  static ResultDoc fromTextTable(const std::string &Name,
                                 const TextTable &Table);

  /// Reads \p Path and dispatches on \p Name's extension: .csv, .json
  /// (metrics schemas), anything else aligned text. Returns false and
  /// sets \p Error when the file is unreadable or malformed.
  static bool load(const std::string &Name, const std::string &Path,
                   ResultDoc &Out, std::string &Error);
};

} // namespace hetsim

#endif // HETSIM_CHECK_RESULTDOC_H
