//===- check/Tolerance.cpp ------------------------------------------------===//

#include "check/Tolerance.h"

#include "common/StringUtil.h"
#include "obs/Json.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

using namespace hetsim;

bool Tolerance::accepts(double Reference, double Actual) const {
  double Delta = std::fabs(Actual - Reference);
  double Allowed = Abs;
  double Scaled = Rel * std::fabs(Reference);
  if (Scaled > Allowed)
    Allowed = Scaled;
  return Delta <= Allowed;
}

bool hetsim::globMatch(const std::string &Pattern, const std::string &Text) {
  // Iterative '*'-only glob with backtracking to the last star.
  size_t P = 0, T = 0;
  size_t StarP = std::string::npos, StarT = 0;
  while (T < Text.size()) {
    if (P < Pattern.size() && (Pattern[P] == Text[T])) {
      ++P;
      ++T;
    } else if (P < Pattern.size() && Pattern[P] == '*') {
      StarP = P++;
      StarT = T;
    } else if (StarP != std::string::npos) {
      P = StarP + 1;
      T = ++StarT;
    } else {
      return false;
    }
  }
  while (P < Pattern.size() && Pattern[P] == '*')
    ++P;
  return P == Pattern.size();
}

Tolerance ToleranceSpec::lookup(const std::string &Doc,
                                const std::string &Field) const {
  Tolerance Result = Default;
  for (const ToleranceRule &Rule : Rules)
    if (globMatch(Rule.DocPattern, Doc) && globMatch(Rule.FieldPattern, Field))
      Result = Rule.Tol;
  return Result;
}

namespace {

/// Parses an `abs=X` / `rel=Y` token into \p Tol; false if neither.
bool parseBandToken(const std::string &Token, Tolerance &Tol) {
  auto ParseNumber = [](const std::string &Text, double &Out) {
    const char *Begin = Text.c_str();
    char *End = nullptr;
    Out = std::strtod(Begin, &End);
    return End != Begin && *End == '\0' && Out >= 0;
  };
  if (Token.rfind("abs=", 0) == 0)
    return ParseNumber(Token.substr(4), Tol.Abs);
  if (Token.rfind("rel=", 0) == 0)
    return ParseNumber(Token.substr(4), Tol.Rel);
  return false;
}

} // namespace

bool ToleranceSpec::parse(const std::string &Text, std::string &Error) {
  Default = Tolerance();
  Rules.clear();

  std::istringstream Stream(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream Tokens(Line);
    std::vector<std::string> Words;
    std::string Word;
    while (Tokens >> Word)
      Words.push_back(Word);
    if (Words.empty())
      continue;

    if (Words.front() == "default") {
      for (size_t I = 1; I != Words.size(); ++I)
        if (!parseBandToken(Words[I], Default)) {
          Error = "tolerances line " + std::to_string(LineNo) +
                  ": bad default token '" + Words[I] + "'";
          return false;
        }
      continue;
    }
    if (Words.front() == "rule") {
      if (Words.size() < 4) {
        Error = "tolerances line " + std::to_string(LineNo) +
                ": rule needs <doc-glob> <field-glob> and a band";
        return false;
      }
      ToleranceRule Rule;
      Rule.DocPattern = Words[1];
      // Band tokens sit at the tail; everything between the doc pattern
      // and them is the field pattern (fields may contain spaces).
      size_t BandStart = Words.size();
      while (BandStart > 2 && parseBandToken(Words[BandStart - 1], Rule.Tol))
        --BandStart;
      if (BandStart == Words.size()) {
        Error = "tolerances line " + std::to_string(LineNo) +
                ": rule has no abs=/rel= band";
        return false;
      }
      for (size_t I = 2; I != BandStart; ++I) {
        if (I != 2)
          Rule.FieldPattern += ' ';
        Rule.FieldPattern += Words[I];
      }
      if (Rule.FieldPattern.empty()) {
        Error = "tolerances line " + std::to_string(LineNo) +
                ": rule is missing the field glob";
        return false;
      }
      // parseBandToken filled Rule.Tol in reverse; re-apply in order for
      // deterministic duplicate handling.
      Rule.Tol = Tolerance();
      for (size_t I = BandStart; I != Words.size(); ++I)
        parseBandToken(Words[I], Rule.Tol);
      Rules.push_back(std::move(Rule));
      continue;
    }
    Error = "tolerances line " + std::to_string(LineNo) +
            ": unknown directive '" + Words.front() + "'";
    return false;
  }
  return true;
}

bool ToleranceSpec::loadFile(const std::string &Path, ToleranceSpec &Out,
                             std::string &Error) {
  std::string Text;
  if (!readTextFile(Path, Text)) {
    Error = "cannot read " + Path;
    return false;
  }
  return Out.parse(Text, Error);
}
