//===- check/Golden.h - Golden refs, blessing, determinism ------*- C++ -*-===//
///
/// \file
/// The driver layer of the check subsystem, shared by the `hetsim_check`
/// CLI and the tests. The `refs/` directory is laid out as:
///
///   refs/MANIFEST          one artifact name per line ('#' comments)
///   refs/tolerances.cfg    ToleranceSpec for golden diffs
///   refs/golden/<name>     blessed copy of each manifest artifact
///   refs/paper/fidelity.cfg paper-expected values and trends
///
/// `diffGoldens` parses each manifest artifact from the candidate output
/// directory and from `refs/golden/`, and compares them per metric.
/// `blessGoldens` copies the candidate artifacts over the goldens after
/// an intended change. `checkSweepDeterminism` runs the same design-space
/// sweep serially and with N workers and byte-compares both the rendered
/// table and the `hetsim-sweep-metrics-v1` document, enforcing the sweep
/// engine's job-count-invariance contract.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CHECK_GOLDEN_H
#define HETSIM_CHECK_GOLDEN_H

#include "check/Compare.h"
#include "check/Fidelity.h"

#include <string>
#include <vector>

namespace hetsim {

/// Where a check run reads from.
struct CheckPaths {
  std::string OutDir = "out";   ///< Candidate artifacts.
  std::string RefsDir = "refs"; ///< Reference tree (layout above).

  std::string manifestPath() const { return RefsDir + "/MANIFEST"; }
  std::string tolerancesPath() const { return RefsDir + "/tolerances.cfg"; }
  std::string goldenPath(const std::string &Name) const {
    return RefsDir + "/golden/" + Name;
  }
  std::string fidelityPath() const {
    return RefsDir + "/paper/fidelity.cfg";
  }
};

/// Reads a manifest: one artifact name per line, '#' comments. Returns
/// false and sets \p Error when unreadable or empty.
bool loadManifest(const std::string &Path, std::vector<std::string> &Names,
                  std::string &Error);

/// Diffs every manifest artifact in \p Paths.OutDir against its golden,
/// with \p Spec. Unreadable or malformed files surface as MissingDoc /
/// ParseError entries; the report comes back ranked.
DiffReport diffGoldens(const CheckPaths &Paths,
                       const std::vector<std::string> &Names,
                       const ToleranceSpec &Spec);

/// Evaluates \p Set against the artifacts in \p Paths.OutDir (parsed on
/// demand, each at most once). The report comes back ranked.
DiffReport fidelityGoldens(const CheckPaths &Paths, const FidelitySet &Set);

/// Copies every manifest artifact from \p Paths.OutDir over its golden,
/// creating `refs/golden/` as needed. Returns false and sets \p Error on
/// the first artifact that cannot be read or written.
bool blessGoldens(const CheckPaths &Paths,
                  const std::vector<std::string> &Names, std::string &Error);

/// Outcome of a determinism probe.
struct DeterminismOutcome {
  bool Ok = false;
  uint64_t Points = 0;   ///< Sweep points per run.
  unsigned Jobs = 0;     ///< Worker count of the parallel run.
  std::string Detail;    ///< First divergence, or a summary when Ok.
};

/// Runs the full design-space sweep (all case-study systems plus all
/// address-space options, times every kernel — or just \p KernelFilter
/// when non-empty) once serially and once with \p Jobs workers, and
/// byte-compares the rendered Figure-5-style table and the sweep metrics
/// document. \p Jobs of 0 or 1 is promoted to 2 so the probe is real.
DeterminismOutcome checkSweepDeterminism(unsigned Jobs,
                                         const std::string &KernelFilter);

} // namespace hetsim

#endif // HETSIM_CHECK_GOLDEN_H
