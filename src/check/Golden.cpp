//===- check/Golden.cpp ---------------------------------------------------===//

#include "check/Golden.h"

#include "core/Experiments.h"
#include "obs/Json.h"

#include <filesystem>
#include <map>
#include <sstream>

using namespace hetsim;

bool hetsim::loadManifest(const std::string &Path,
                          std::vector<std::string> &Names,
                          std::string &Error) {
  std::string Text;
  if (!readTextFile(Path, Text)) {
    Error = "cannot read " + Path;
    return false;
  }
  Names.clear();
  std::istringstream Stream(Text);
  std::string Line;
  while (std::getline(Stream, Line)) {
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream Tokens(Line);
    std::string Name;
    if (Tokens >> Name)
      Names.push_back(Name);
  }
  if (Names.empty()) {
    Error = Path + " lists no artifacts";
    return false;
  }
  return true;
}

namespace {

DiffEntry makeDocEntry(DiffKind Kind, const std::string &Doc,
                       const std::string &Detail) {
  DiffEntry Entry;
  Entry.Kind = Kind;
  Entry.Doc = Doc;
  Entry.Detail = Detail;
  return Entry;
}

} // namespace

DiffReport hetsim::diffGoldens(const CheckPaths &Paths,
                               const std::vector<std::string> &Names,
                               const ToleranceSpec &Spec) {
  DiffReport Report;
  for (const std::string &Name : Names) {
    ResultDoc Reference, Actual;
    std::string Error;
    if (!ResultDoc::load(Name, Paths.goldenPath(Name), Reference, Error)) {
      Report.Entries.push_back(makeDocEntry(
          DiffKind::MissingDoc, Name, "golden unavailable: " + Error));
      continue;
    }
    if (!ResultDoc::load(Name, Paths.OutDir + "/" + Name, Actual, Error)) {
      Report.Entries.push_back(makeDocEntry(
          DiffKind::MissingDoc, Name, "candidate unavailable: " + Error));
      continue;
    }
    Report.merge(compareDocs(Reference, Actual, Spec));
  }
  Report.sortBySeverity();
  return Report;
}

DiffReport hetsim::fidelityGoldens(const CheckPaths &Paths,
                                   const FidelitySet &Set) {
  // Parse each referenced artifact at most once; remember failures so a
  // missing artifact is reported per check but parsed once.
  std::map<std::string, ResultDoc> Cache;
  std::map<std::string, bool> Loaded;
  auto Lookup = [&](const std::string &Name) -> const ResultDoc * {
    auto It = Loaded.find(Name);
    if (It == Loaded.end()) {
      std::string Error;
      ResultDoc Doc;
      bool Ok = ResultDoc::load(Name, Paths.OutDir + "/" + Name, Doc, Error);
      Loaded[Name] = Ok;
      if (Ok)
        Cache[Name] = std::move(Doc);
      return Ok ? &Cache[Name] : nullptr;
    }
    return It->second ? &Cache[Name] : nullptr;
  };
  DiffReport Report = evaluateFidelity(Set, Lookup);
  Report.DocsCompared = Cache.size();
  Report.sortBySeverity();
  return Report;
}

bool hetsim::blessGoldens(const CheckPaths &Paths,
                          const std::vector<std::string> &Names,
                          std::string &Error) {
  for (const std::string &Name : Names) {
    std::string Text;
    std::string From = Paths.OutDir + "/" + Name;
    if (!readTextFile(From, Text)) {
      Error = "cannot read " + From;
      return false;
    }
    std::string To = Paths.goldenPath(Name);
    std::error_code Ec;
    std::filesystem::path Parent = std::filesystem::path(To).parent_path();
    if (!Parent.empty())
      std::filesystem::create_directories(Parent, Ec);
    if (!writeTextFile(To, Text)) {
      Error = "cannot write " + To;
      return false;
    }
  }
  return true;
}

namespace {

/// Builds the determinism sweep: every case-study system and every
/// address-space option, times the selected kernels.
std::vector<SweepPoint> determinismPoints(const std::string &KernelFilter,
                                          std::string &Error) {
  std::vector<KernelId> Kernels;
  if (KernelFilter.empty()) {
    for (KernelId Kernel : allKernels())
      Kernels.push_back(Kernel);
  } else {
    KernelId Kernel;
    if (!kernelByName(KernelFilter.c_str(), Kernel)) {
      Error = "unknown kernel '" + KernelFilter + "'";
      return {};
    }
    Kernels.push_back(Kernel);
  }

  std::vector<SystemConfig> Systems;
  for (CaseStudy Study : allCaseStudies())
    Systems.push_back(SystemConfig::forCaseStudy(Study));
  static const AddressSpaceKind Kinds[] = {
      AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
      AddressSpaceKind::Disjoint, AddressSpaceKind::Adsm};
  for (AddressSpaceKind Kind : Kinds)
    Systems.push_back(SystemConfig::forAddressSpaceStudy(Kind));

  std::vector<SweepPoint> Points;
  Points.reserve(Systems.size() * Kernels.size());
  for (const SystemConfig &Config : Systems)
    for (KernelId Kernel : Kernels)
      Points.emplace_back(Config, Kernel);
  return Points;
}

/// Runs the sweep with \p Jobs workers and renders both comparable
/// documents: the Figure-5-style table and the sweep metrics JSON.
void runOnce(const std::vector<SweepPoint> &Points, unsigned Jobs,
             std::string &Table, std::string &MetricsJson) {
  SweepRunner Runner(Jobs);
  std::vector<RunResult> Results = Runner.run(Points);

  std::vector<ExperimentRow> Rows;
  Rows.reserve(Points.size());
  for (size_t I = 0; I != Points.size(); ++I) {
    ExperimentRow Row;
    Row.System = Points[I].Config.Name;
    Row.Kernel = Points[I].Kernel;
    Row.Result = std::move(Results[I]);
    Rows.push_back(std::move(Row));
  }
  Table = renderFigure5(Rows).render();
  MetricsJson = renderSweepMetricsJson(Points, Runner.metrics());
}

/// Names the first line where \p A and \p B diverge.
std::string firstDivergence(const std::string &A, const std::string &B) {
  std::istringstream StreamA(A), StreamB(B);
  std::string LineA, LineB;
  unsigned LineNo = 0;
  while (true) {
    ++LineNo;
    bool GotA = static_cast<bool>(std::getline(StreamA, LineA));
    bool GotB = static_cast<bool>(std::getline(StreamB, LineB));
    if (!GotA && !GotB)
      return "documents differ in unreported whitespace";
    if (!GotA || !GotB || LineA != LineB)
      return "line " + std::to_string(LineNo) + ": serial '" +
             (GotA ? LineA : "<absent>") + "' vs parallel '" +
             (GotB ? LineB : "<absent>") + "'";
  }
}

} // namespace

DeterminismOutcome
hetsim::checkSweepDeterminism(unsigned Jobs, const std::string &KernelFilter) {
  DeterminismOutcome Outcome;
  if (Jobs < 2)
    Jobs = 2;
  Outcome.Jobs = Jobs;

  std::string Error;
  std::vector<SweepPoint> Points = determinismPoints(KernelFilter, Error);
  if (Points.empty()) {
    Outcome.Detail = Error.empty() ? "no sweep points" : Error;
    return Outcome;
  }
  Outcome.Points = Points.size();

  std::string SerialTable, SerialMetrics;
  runOnce(Points, 1, SerialTable, SerialMetrics);
  std::string ParallelTable, ParallelMetrics;
  runOnce(Points, Jobs, ParallelTable, ParallelMetrics);

  if (SerialTable != ParallelTable) {
    Outcome.Detail =
        "rendered table diverges: " + firstDivergence(SerialTable,
                                                      ParallelTable);
    return Outcome;
  }
  if (SerialMetrics != ParallelMetrics) {
    Outcome.Detail = "sweep metrics document diverges: " +
                     firstDivergence(SerialMetrics, ParallelMetrics);
    return Outcome;
  }
  Outcome.Ok = true;
  Outcome.Detail = "serial and jobs=" + std::to_string(Jobs) +
                   " sweeps byte-identical over " +
                   std::to_string(Points.size()) + " points (table + metrics)";
  return Outcome;
}
