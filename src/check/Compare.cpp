//===- check/Compare.cpp --------------------------------------------------===//

#include "check/Compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

using namespace hetsim;

const char *hetsim::diffKindName(DiffKind Kind) {
  switch (Kind) {
  case DiffKind::MissingDoc:
    return "missing-doc";
  case DiffKind::ParseError:
    return "parse-error";
  case DiffKind::MissingRow:
    return "missing-row";
  case DiffKind::ExtraRow:
    return "extra-row";
  case DiffKind::MissingField:
    return "missing-field";
  case DiffKind::TextMismatch:
    return "text-mismatch";
  case DiffKind::ValueDrift:
    return "value-drift";
  case DiffKind::FidelityValue:
    return "fidelity-value";
  case DiffKind::FidelityTrend:
    return "fidelity-trend";
  }
  return "unknown";
}

std::string DiffEntry::describe() const {
  char Buffer[512];
  std::string Where = Doc;
  if (!Row.empty())
    Where += " : " + Row;
  if (!Field.empty())
    Where += " : " + Field;
  switch (Kind) {
  case DiffKind::ValueDrift:
  case DiffKind::FidelityValue:
    std::snprintf(Buffer, sizeof(Buffer),
                  "%-14s %s  ref=%.6g act=%.6g |d|=%.4g rel=%.2f%% "
                  "(allowed abs=%g rel=%g)",
                  diffKindName(Kind), Where.c_str(), Reference, Actual,
                  AbsDelta, 100.0 * RelDelta, Allowed.Abs, Allowed.Rel);
    break;
  default:
    std::snprintf(Buffer, sizeof(Buffer), "%-14s %s  %s", diffKindName(Kind),
                  Where.c_str(), Detail.c_str());
    break;
  }
  return Buffer;
}

void DiffReport::sortBySeverity() {
  std::stable_sort(Entries.begin(), Entries.end(),
                   [](const DiffEntry &A, const DiffEntry &B) {
                     bool DriftA = A.Kind == DiffKind::ValueDrift ||
                                   A.Kind == DiffKind::FidelityValue;
                     bool DriftB = B.Kind == DiffKind::ValueDrift ||
                                   B.Kind == DiffKind::FidelityValue;
                     if (DriftA != DriftB)
                       return !DriftA; // Structural breaks first.
                     if (DriftA)
                       return A.RelDelta > B.RelDelta;
                     return static_cast<uint8_t>(A.Kind) <
                            static_cast<uint8_t>(B.Kind);
                   });
}

std::string DiffReport::render(const std::string &Title) const {
  char Buffer[256];
  std::snprintf(Buffer, sizeof(Buffer),
                "== %s: %llu doc%s, %llu rows, %llu values compared ==\n",
                Title.c_str(), static_cast<unsigned long long>(DocsCompared),
                DocsCompared == 1 ? "" : "s",
                static_cast<unsigned long long>(RowsCompared),
                static_cast<unsigned long long>(ValuesCompared));
  std::string Out = Buffer;
  if (Entries.empty()) {
    Out += "ok: no drift beyond tolerance\n";
    return Out;
  }
  std::snprintf(Buffer, sizeof(Buffer), "FAIL: %zu violation%s\n",
                Entries.size(), Entries.size() == 1 ? "" : "s");
  Out += Buffer;
  for (size_t I = 0; I != Entries.size(); ++I) {
    std::snprintf(Buffer, sizeof(Buffer), "%3zu. ", I + 1);
    Out += Buffer;
    Out += Entries[I].describe();
    Out += '\n';
  }
  return Out;
}

void DiffReport::merge(DiffReport Other) {
  for (DiffEntry &Entry : Other.Entries)
    Entries.push_back(std::move(Entry));
  DocsCompared += Other.DocsCompared;
  RowsCompared += Other.RowsCompared;
  ValuesCompared += Other.ValuesCompared;
}

namespace {

DiffEntry makeDrift(const ResultDoc &Doc, const std::string &Row,
                    const std::string &Field, double Reference, double Actual,
                    Tolerance Allowed) {
  DiffEntry Entry;
  Entry.Kind = DiffKind::ValueDrift;
  Entry.Doc = Doc.Name;
  Entry.Row = Row;
  Entry.Field = Field;
  Entry.Reference = Reference;
  Entry.Actual = Actual;
  Entry.AbsDelta = std::fabs(Actual - Reference);
  Entry.RelDelta = Reference != 0 ? Entry.AbsDelta / std::fabs(Reference)
                                  : Entry.AbsDelta;
  Entry.Allowed = Allowed;
  return Entry;
}

void compareRow(const ResultDoc &Reference, const ResultRow &RefRow,
                const ResultRow &ActRow, const ToleranceSpec &Spec,
                DiffReport &Report) {
  ++Report.RowsCompared;
  for (const auto &RefField : RefRow.Fields) {
    const ResultValue *Act = ActRow.find(RefField.first);
    if (!Act) {
      DiffEntry Entry;
      Entry.Kind = DiffKind::MissingField;
      Entry.Doc = Reference.Name;
      Entry.Row = RefRow.Label;
      Entry.Field = RefField.first;
      Entry.Detail = "field present in reference but not in candidate";
      Report.Entries.push_back(std::move(Entry));
      continue;
    }
    const ResultValue &Ref = RefField.second;
    if (Ref.IsNumber && Act->IsNumber) {
      ++Report.ValuesCompared;
      Tolerance Allowed = Spec.lookup(Reference.Name, RefField.first);
      if (!Allowed.accepts(Ref.Number, Act->Number))
        Report.Entries.push_back(makeDrift(Reference, RefRow.Label,
                                           RefField.first, Ref.Number,
                                           Act->Number, Allowed));
      continue;
    }
    if (Ref.Text != Act->Text) {
      DiffEntry Entry;
      Entry.Kind = DiffKind::TextMismatch;
      Entry.Doc = Reference.Name;
      Entry.Row = RefRow.Label;
      Entry.Field = RefField.first;
      Entry.Detail = "ref '" + Ref.Text + "' vs act '" + Act->Text + "'";
      Report.Entries.push_back(std::move(Entry));
    }
  }
}

} // namespace

DiffReport hetsim::compareDocs(const ResultDoc &Reference,
                               const ResultDoc &Actual,
                               const ToleranceSpec &Spec) {
  DiffReport Report;
  Report.DocsCompared = 1;

  // Pair rows by (label, occurrence index) so reordering is tolerated
  // but genuinely missing rows are named.
  std::map<std::string, std::vector<size_t>> ActRows;
  for (size_t I = 0; I != Actual.Rows.size(); ++I)
    ActRows[Actual.Rows[I].Label].push_back(I);

  std::map<std::string, size_t> Taken;
  std::vector<bool> Matched(Actual.Rows.size(), false);
  for (const ResultRow &RefRow : Reference.Rows) {
    auto It = ActRows.find(RefRow.Label);
    size_t Occurrence = Taken[RefRow.Label]++;
    if (It == ActRows.end() || Occurrence >= It->second.size()) {
      DiffEntry Entry;
      Entry.Kind = DiffKind::MissingRow;
      Entry.Doc = Reference.Name;
      Entry.Row = RefRow.Label;
      Entry.Detail = "row present in reference but not in candidate";
      Report.Entries.push_back(std::move(Entry));
      continue;
    }
    size_t ActIndex = It->second[Occurrence];
    Matched[ActIndex] = true;
    compareRow(Reference, RefRow, Actual.Rows[ActIndex], Spec, Report);
  }
  for (size_t I = 0; I != Actual.Rows.size(); ++I) {
    if (Matched[I])
      continue;
    DiffEntry Entry;
    Entry.Kind = DiffKind::ExtraRow;
    Entry.Doc = Reference.Name;
    Entry.Row = Actual.Rows[I].Label;
    Entry.Detail = "row present in candidate but not in reference";
    Report.Entries.push_back(std::move(Entry));
  }

  // Prose is rendered from the same numbers at coarse granularity, so it
  // must match line-for-line; report the first divergence precisely.
  size_t Lines = std::max(Reference.Prose.size(), Actual.Prose.size());
  for (size_t I = 0; I != Lines; ++I) {
    const std::string *Ref =
        I < Reference.Prose.size() ? &Reference.Prose[I] : nullptr;
    const std::string *Act =
        I < Actual.Prose.size() ? &Actual.Prose[I] : nullptr;
    if (Ref && Act && *Ref == *Act)
      continue;
    DiffEntry Entry;
    Entry.Kind = DiffKind::TextMismatch;
    Entry.Doc = Reference.Name;
    Entry.Row = "prose line " + std::to_string(I + 1);
    Entry.Detail = "ref '" + (Ref ? *Ref : "<absent>") + "' vs act '" +
                   (Act ? *Act : "<absent>") + "'";
    Report.Entries.push_back(std::move(Entry));
    break; // One prose divergence is enough; the rest usually cascades.
  }
  return Report;
}
