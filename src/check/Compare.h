//===- check/Compare.h - Tolerance-aware document diffing -------*- C++ -*-===//
///
/// \file
/// The comparison engine: diffs a candidate ResultDoc against a golden
/// reference per metric, applying the ToleranceSpec band for each
/// (document, field) pair, and collects violations into a DiffReport
/// ranked by severity — structural breaks (missing documents, rows, or
/// fields) first, then value drifts by relative delta — so the CI gate
/// names the worst offender at the top instead of dumping a raw diff.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CHECK_COMPARE_H
#define HETSIM_CHECK_COMPARE_H

#include "check/ResultDoc.h"
#include "check/Tolerance.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hetsim {

enum class DiffKind : uint8_t {
  MissingDoc,    ///< Reference exists, candidate artifact does not.
  ParseError,    ///< Candidate artifact unreadable or malformed.
  MissingRow,    ///< Reference row absent from the candidate.
  ExtraRow,      ///< Candidate row absent from the reference.
  MissingField,  ///< Row matched but a reference field is gone.
  TextMismatch,  ///< Text cell or prose line differs.
  ValueDrift,    ///< Numeric delta beyond the tolerance band.
  FidelityValue, ///< Paper-expected value check failed.
  FidelityTrend, ///< Paper-expected ordering check failed.
};

const char *diffKindName(DiffKind Kind);

/// One violation.
struct DiffEntry {
  DiffKind Kind = DiffKind::ValueDrift;
  std::string Doc;
  std::string Row;
  std::string Field;
  double Reference = 0;
  double Actual = 0;
  double AbsDelta = 0;
  double RelDelta = 0; ///< AbsDelta / |Reference| (AbsDelta when ref is 0).
  Tolerance Allowed;
  std::string Detail;

  /// One human-readable report line (no trailing newline).
  std::string describe() const;
};

/// The outcome of one diff (or fidelity) run.
struct DiffReport {
  std::vector<DiffEntry> Entries;
  uint64_t DocsCompared = 0;
  uint64_t RowsCompared = 0;
  uint64_t ValuesCompared = 0;

  bool ok() const { return Entries.empty(); }

  /// Ranks entries: structural kinds first (in enum order), then value
  /// drifts by descending relative delta. Stable for ties.
  void sortBySeverity();

  /// Renders the ranked report: a summary line plus one numbered line
  /// per violation ("ok" when clean).
  std::string render(const std::string &Title) const;

  /// Appends \p Other's entries and counters into this report.
  void merge(DiffReport Other);
};

/// Diffs \p Actual against \p Reference with \p Spec. Rows pair by label
/// and occurrence; fields pair by name; prose must match line-for-line.
DiffReport compareDocs(const ResultDoc &Reference, const ResultDoc &Actual,
                       const ToleranceSpec &Spec);

} // namespace hetsim

#endif // HETSIM_CHECK_COMPARE_H
