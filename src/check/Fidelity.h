//===- check/Fidelity.h - Paper-expected value checks -----------*- C++ -*-===//
///
/// \file
/// Paper-fidelity checks: declarative expectations transcribed from the
/// source paper (Table III benchmark counts, Figure 5-7 trends) that the
/// regenerated artifacts must keep satisfying. Unlike golden diffs these
/// carry *loose* bands — they pin the reproduction to the paper, not to
/// the last blessed run — so a deliberate timing-model change can move a
/// golden without breaking fidelity, while a change that inverts a
/// paper-reported ordering fails loudly.
///
/// `refs/paper/fidelity.cfg` grammar, fields split on " :: ":
///
///   value <doc> :: <row-prefix> :: <field> <op> <number> [abs=X] [rel=Y]
///   trend <doc> :: <field> :: <rowA> <op> <rowB> [<op> <rowC> ...]
///
/// where <op> is one of == <= >= < >. A row selector matches the first
/// row whose label equals it or starts with it followed by '/'. For
/// `value ==` the abs/rel band applies; inequalities are strict as
/// written.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CHECK_FIDELITY_H
#define HETSIM_CHECK_FIDELITY_H

#include "check/Compare.h"

#include <functional>
#include <string>
#include <vector>

namespace hetsim {

enum class FidelityOp : uint8_t { Eq, Le, Ge, Lt, Gt };

const char *fidelityOpName(FidelityOp Op);

/// One parsed expectation line.
struct FidelityCheck {
  bool IsTrend = false;
  std::string Doc;
  std::string Field;                  ///< Field under test.
  // Value checks:
  std::string RowSelector;
  FidelityOp Op = FidelityOp::Eq;
  double Expected = 0;
  Tolerance Band;                     ///< Applies to == only.
  // Trend checks:
  std::vector<std::string> TrendRows; ///< N row selectors...
  std::vector<FidelityOp> TrendOps;   ///< ...joined by N-1 operators.
  unsigned LineNo = 0;
  std::string Source;                 ///< Original cfg line, for reports.
};

/// All expectations of one fidelity run.
struct FidelitySet {
  std::vector<FidelityCheck> Checks;

  bool parse(const std::string &Text, std::string &Error);
  static bool loadFile(const std::string &Path, FidelitySet &Out,
                       std::string &Error);
};

/// Evaluates every check. \p DocLookup resolves an artifact name to its
/// parsed document (nullptr when the artifact is missing or malformed —
/// reported as MissingDoc). Violations carry the offending document,
/// row, field, and delta.
DiffReport
evaluateFidelity(const FidelitySet &Set,
                 const std::function<const ResultDoc *(const std::string &)>
                     &DocLookup);

} // namespace hetsim

#endif // HETSIM_CHECK_FIDELITY_H
