//===- bench/hetsim_bench.cpp - Simulator performance harness -------------===//
///
/// \file
/// Times the simulator itself, phase by phase: trace generation throughput
/// per kernel, single-run simulation per kernel x memory model, the fig5
/// sweep through the SweepRunner, and the Pattern-block closed-form fold
/// against its per-record reference. Each phase appends one record in the
/// bench_timing.json shape (points_per_s carries the phase's native
/// throughput), so scripts/bench_timing.sh can gate any of them.
///
/// Usage: hetsim_bench [--smoke] [--phase NAME]
///   --smoke   shrink every phase to a seconds-scale CI gate
///   --phase   run only the named phase
///             (tracegen|singlerun|sweep|cachehit|scaling|fastpath|
///              memphase)
///
//===----------------------------------------------------------------------===//

#include "common/WallTimer.h"
#include "core/Experiments.h"
#include "memory/MemorySystem.h"
#include "trace/ComputeBlock.h"
#include "trace/TraceCache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace hetsim;

namespace {

struct BenchOptions {
  bool Smoke = false;
  std::string Phase; ///< Empty = all phases.

  bool runs(const char *Name) const {
    return Phase.empty() || Phase == Name;
  }
};

/// Appends a bench_timing.json record for a hand-timed phase: Points is
/// the phase's native unit (records, runs, sweep points), so
/// points_per_s carries its throughput.
void reportPhase(const std::string &Bench, uint64_t Points,
                 double WallSeconds, double TraceGenSeconds = 0) {
  SweepTelemetry T;
  T.Jobs = 1;
  T.JobsSource = "explicit";
  T.Points = Points;
  T.WallSeconds = WallSeconds;
  T.TraceGenSeconds = TraceGenSeconds;
  std::printf("  -> %s\n", T.summary().c_str());
  appendBenchTiming(Bench, T);
}

/// Phase 1: raw trace-generation throughput (records/s) per kernel.
void benchTraceGen(const BenchOptions &Opts) {
  std::printf("=== tracegen: generator throughput ===\n");
  const uint64_t Records = Opts.Smoke ? 200000 : 2000000;
  uint64_t Total = 0;
  double GenBefore = double(traceGenNanos()) * 1e-9;
  WallTimer Timer;
  for (KernelId Kernel : allKernels()) {
    KernelDataLayout Layout =
        KernelDataLayout::makeLinear(Kernel, region::CpuPrivateBase);
    GenRequest Req;
    Req.Pu = PuKind::Cpu;
    Req.InstCount = Records;
    WallTimer KernelTimer;
    TraceBuffer Trace =
        KernelTraceGenerator::forKernel(Kernel).generateCompute(Req, Layout);
    double Secs = KernelTimer.elapsedSeconds();
    Total += Trace.size();
    std::printf("  %-12s %8.1f Mrec/s (%llu records, %.3f s)\n",
                kernelName(Kernel), double(Trace.size()) / Secs / 1e6,
                static_cast<unsigned long long>(Trace.size()), Secs);
  }
  reportPhase("hetsim_bench_tracegen", Total, Timer.elapsedSeconds(),
              double(traceGenNanos()) * 1e-9 - GenBefore);
}

/// Phase 2: end-to-end single runs, each kernel on each memory model.
void benchSingleRun(const BenchOptions &Opts) {
  std::printf("=== singlerun: per kernel x model ===\n");
  std::vector<CaseStudy> Studies(allCaseStudies());
  std::vector<KernelId> Kernels(allKernels());
  if (Opts.Smoke) {
    Studies = {CaseStudy::CpuGpu, CaseStudy::Fusion};
    Kernels = {KernelId::Reduction, KernelId::MergeSort};
  }
  uint64_t Runs = 0;
  double GenBefore = double(traceGenNanos()) * 1e-9;
  WallTimer Timer;
  for (CaseStudy Study : Studies) {
    SystemConfig Config = SystemConfig::forCaseStudy(Study);
    for (KernelId Kernel : Kernels) {
      WallTimer RunTimer;
      HeteroSimulator Sim(Config);
      RunResult Result = Sim.run(Kernel);
      std::printf("  %-12s %-12s %7.0f ms wall, %.3g sim-ns\n",
                  caseStudyName(Study), kernelName(Kernel),
                  RunTimer.elapsedSeconds() * 1e3, Result.Time.totalNs());
      ++Runs;
    }
  }
  reportPhase("hetsim_bench_singlerun", Runs, Timer.elapsedSeconds(),
              double(traceGenNanos()) * 1e-9 - GenBefore);
}

/// Phase 3: the fig5 sweep through the SweepRunner (serial, cold cache —
/// the configuration the committed BENCH_sweep.json baseline gates).
void benchSweep(const BenchOptions &Opts) {
  std::printf("=== sweep: fig5 case studies through SweepRunner ===\n");
  TraceCache::global().clear();
  std::vector<SweepPoint> Points;
  for (CaseStudy Study : allCaseStudies())
    for (KernelId Kernel : allKernels()) {
      if (Opts.Smoke &&
          (Study != CaseStudy::CpuGpu || Kernel > KernelId::Convolution))
        continue;
      Points.emplace_back(SystemConfig::forCaseStudy(Study), Kernel);
    }
  SweepRunner Runner(1);
  Runner.run(Points);
  std::printf("  -> %s\n", Runner.telemetry().summary().c_str());
  appendBenchTiming("hetsim_bench_sweep", Runner.telemetry());
}

/// Phase 4: regression gate — serving a trace from the cache must never
/// be slower than regenerating it. A hit is one sharded-map lookup plus a
/// shared_future get on a ready slot; regeneration walks the whole
/// generator. If this assertion ever trips, the cache's hot path has
/// picked up contention (the serial-cached-slower-than-nocache inversion
/// this PR fixed) and the bench fails loudly rather than letting sweeps
/// quietly pay for a cache that hurts.
void benchCacheHit(const BenchOptions &Opts) {
  std::printf("=== cachehit: hit vs regeneration ===\n");
  if (!TraceCache::global().enabled()) {
    std::printf("  SKIP: HETSIM_TRACE_CACHE=0 bypasses the cache\n");
    return;
  }
  TraceCache::global().clear();
  const KernelId Kernel = KernelId::Reduction;
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(Kernel, region::CpuPrivateBase);
  GenRequest Req;
  Req.Pu = PuKind::Cpu;
  Req.InstCount = Opts.Smoke ? 200000 : 2000000;

  // Populate the entry (cold miss), then time regeneration and a hit on
  // the identical inputs.
  auto Cold = TraceCache::global().compute(Kernel, Req, Layout);
  WallTimer RegenTimer;
  TraceBuffer Regen =
      KernelTraceGenerator::forKernel(Kernel).generateCompute(Req, Layout);
  double RegenSecs = RegenTimer.elapsedSeconds();
  WallTimer HitTimer;
  auto Hit = TraceCache::global().compute(Kernel, Req, Layout);
  double HitSecs = HitTimer.elapsedSeconds();

  std::printf("  %llu records: regenerate %.6f s, cache hit %.6f s\n",
              static_cast<unsigned long long>(Cold->size()), RegenSecs,
              HitSecs);
  reportPhase("hetsim_bench_cachehit", Cold->size(), HitSecs);
  if (Hit.get() != Cold.get()) {
    std::fprintf(stderr, "error: hit returned a different buffer\n");
    std::exit(1);
  }
  if (HitSecs > RegenSecs) {
    std::fprintf(stderr,
                 "error: cache hit (%.6f s) slower than regeneration "
                 "(%.6f s)\n",
                 HitSecs, RegenSecs);
    std::exit(1);
  }
}

/// Phase 5: scaling gate — a jobs=2 sweep must finish no slower than
/// 1.05x the serial wall on a host that actually has two cores (the
/// threshold tolerates timer noise; real contention regressions like the
/// jobs=4 trace-gen ballooning this PR fixed blow straight past it).
/// Single-core hosts print a visible skip notice instead of a flaky gate.
void benchScaling(const BenchOptions &Opts) {
  std::printf("=== scaling: jobs=2 vs serial sweep wall ===\n");
  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores < 2) {
    std::printf("  SKIP: scaling gate needs >=2 cores, host reports %u "
                "(gate not evaluated)\n",
                Cores);
    return;
  }
  std::vector<SweepPoint> Points;
  for (CaseStudy Study : allCaseStudies())
    for (KernelId Kernel : allKernels()) {
      if (Opts.Smoke &&
          (Study != CaseStudy::CpuGpu || Kernel > KernelId::Convolution))
        continue;
      Points.emplace_back(SystemConfig::forCaseStudy(Study), Kernel);
    }

  // Both runs start cold so they pay identical generation work;
  // single-flight keeps the parallel run from duplicating any of it.
  auto RunWith = [&](unsigned Jobs, const char *Bench) {
    TraceCache::global().clear();
    SweepRunner Runner(Jobs);
    Runner.run(Points);
    std::printf("  jobs=%u -> %s\n", Jobs,
                Runner.telemetry().summary().c_str());
    appendBenchTiming(Bench, Runner.telemetry());
    return Runner.telemetry().WallSeconds;
  };
  double SerialSecs = RunWith(1, "hetsim_bench_scaling_serial");
  double ParallelSecs = RunWith(2, "hetsim_bench_scaling_jobs2");

  if (ParallelSecs > SerialSecs * 1.05) {
    std::fprintf(stderr,
                 "error: jobs=2 sweep (%.3f s) exceeded 1.05x serial "
                 "wall (%.3f s)\n",
                 ParallelSecs, SerialSecs);
    std::exit(1);
  }
  std::printf("  gate ok: jobs=2 %.3f s <= 1.05 x serial %.3f s\n",
              ParallelSecs, SerialSecs);
}

/// Phase 6: the Pattern-block closed-form fold against its per-record
/// reference — the speedup the fast path buys on explicitly periodic
/// steady-state traces, with an equality check.
void benchFastPath(const BenchOptions &Opts) {
  std::printf("=== fastpath: pattern fold vs per-record reference ===\n");
  PatternBlock Pattern;
  const uint32_t Pc = 0x400;
  for (unsigned I = 0; I != 6; ++I)
    Pattern.Prologue.emitAlu(Opcode::IntAlu, Pc + I * 4, uint8_t(8 + I), 0);
  Pattern.Body.emitAlu(Opcode::IntAlu, Pc + 0x40, 8, 9);
  Pattern.Body.emitAlu(Opcode::FpMac, Pc + 0x44, 9, 8, 10);
  Pattern.Body.emitAlu(Opcode::IntAlu, Pc + 0x48, 10, 9);
  Pattern.Body.emitBranch(Pc + 0x4C, /*Taken=*/true);
  Pattern.BodyRepeats = Opts.Smoke ? 250000 : 2500000;
  auto Block = std::make_shared<const BlockTrace>(std::move(Pattern));

  auto RunOnce = [&](int Mode) {
    MemHierConfig HierConfig;
    MemorySystem Mem(HierConfig);
    Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
    CpuCore Core(CpuConfig(), Mem);
    setFastPathForTesting(Mode);
    SegmentResult R = Mode == 0 ? Core.run(Block->materialized(), 0)
                                : Core.run(SharedTrace(Block), 0);
    setFastPathForTesting(-1);
    return R;
  };

  WallTimer RefTimer;
  SegmentResult Ref = RunOnce(0);
  double RefSecs = RefTimer.elapsedSeconds();
  WallTimer FastTimer;
  SegmentResult Fast = RunOnce(1);
  double FastSecs = FastTimer.elapsedSeconds();

  bool Equal = Ref.Cycles == Fast.Cycles && Ref.Insts == Fast.Insts &&
               Ref.BranchMispredicts == Fast.BranchMispredicts &&
               Ref.ICacheMisses == Fast.ICacheMisses;
  std::printf("  %llu records: reference %.3f s, fold %.4f s (%.0fx), "
              "results %s\n",
              static_cast<unsigned long long>(Block->totalRecords()), RefSecs,
              FastSecs, FastSecs > 0 ? RefSecs / FastSecs : 0.0,
              Equal ? "identical" : "DIFFER");
  reportPhase("hetsim_bench_fastpath", Block->totalRecords(), FastSecs);
  if (!Equal) {
    std::fprintf(stderr, "error: fold diverged from reference\n");
    std::exit(1);
  }
}

/// Phase 7: memory-phase attribution — where each run's wall time goes:
/// trace generation, the memory walk's TLB/translate step, the cache
/// hierarchy, DRAM service, and whatever remains (core compute
/// modelling). This is the measurement that motivates the selective-
/// fidelity fast path: it shows how much of simulate_s the memory
/// hierarchy costs per kernel x model.
void benchMemPhase(const BenchOptions &Opts) {
  std::printf("=== memphase: wall-time attribution per run ===\n");
  std::vector<CaseStudy> Studies(allCaseStudies());
  std::vector<KernelId> Kernels(allKernels());
  if (Opts.Smoke) {
    Studies = {CaseStudy::CpuGpu, CaseStudy::Fusion};
    Kernels = {KernelId::Reduction, KernelId::MergeSort};
  }
  MemorySystem::setMemPhaseProfilingForTesting(1);
  uint64_t Runs = 0;
  double TotTlb = 0, TotCache = 0, TotDram = 0, TotWall = 0;
  double GenBefore = double(traceGenNanos()) * 1e-9;
  WallTimer Timer;
  std::printf("  %-12s %-12s %9s %8s %8s %8s %8s\n", "model", "kernel",
              "wall_ms", "tlb_ms", "cache_ms", "dram_ms", "other_ms");
  for (CaseStudy Study : Studies) {
    SystemConfig Config = SystemConfig::forCaseStudy(Study);
    for (KernelId Kernel : Kernels) {
      WallTimer RunTimer;
      HeteroSimulator Sim(Config);
      Sim.run(Kernel);
      double Wall = RunTimer.elapsedSeconds();
      const MemorySystem::MemPhaseProfile &P = Sim.memory().phaseProfile();
      double Tlb = double(P.TlbNs) * 1e-9;
      double CacheS = double(P.CacheNs) * 1e-9;
      double Dram = double(P.DramNs) * 1e-9;
      double Other = Wall - Tlb - CacheS - Dram;
      std::printf("  %-12s %-12s %9.1f %8.1f %8.1f %8.1f %8.1f\n",
                  caseStudyName(Study), kernelName(Kernel), Wall * 1e3,
                  Tlb * 1e3, CacheS * 1e3, Dram * 1e3,
                  (Other > 0 ? Other : 0) * 1e3);
      TotTlb += Tlb;
      TotCache += CacheS;
      TotDram += Dram;
      TotWall += Wall;
      ++Runs;
    }
  }
  MemorySystem::setMemPhaseProfilingForTesting(-1);
  double GenSecs = double(traceGenNanos()) * 1e-9 - GenBefore;
  double MemSecs = TotTlb + TotCache + TotDram;
  std::printf("  total: %.3f s wall = %.3f gen + %.3f tlb + %.3f cache + "
              "%.3f dram + %.3f compute/other (memory walk %.0f%%)\n",
              TotWall, GenSecs, TotTlb, TotCache, TotDram,
              TotWall - GenSecs - MemSecs,
              TotWall > 0 ? MemSecs / TotWall * 100 : 0);
  reportPhase("hetsim_bench_memphase", Runs, Timer.elapsedSeconds(),
              GenSecs);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0) {
      Opts.Smoke = true;
    } else if (std::strcmp(Argv[I], "--phase") == 0 && I + 1 != Argc) {
      Opts.Phase = Argv[++I];
    } else {
      std::fprintf(stderr,
                   "usage: hetsim_bench [--smoke] "
                   "[--phase tracegen|singlerun|sweep|cachehit|scaling|"
                   "fastpath|memphase]\n");
      return 2;
    }
  }

  std::printf("hetsim_bench%s\n\n", Opts.Smoke ? " (smoke)" : "");
  if (Opts.runs("tracegen"))
    benchTraceGen(Opts);
  if (Opts.runs("singlerun"))
    benchSingleRun(Opts);
  if (Opts.runs("sweep"))
    benchSweep(Opts);
  if (Opts.runs("cachehit"))
    benchCacheHit(Opts);
  if (Opts.runs("scaling"))
    benchScaling(Opts);
  if (Opts.runs("fastpath"))
    benchFastPath(Opts);
  if (Opts.runs("memphase"))
    benchMemPhase(Opts);
  return 0;
}
