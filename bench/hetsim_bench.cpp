//===- bench/hetsim_bench.cpp - Simulator performance harness -------------===//
///
/// \file
/// Times the simulator itself, phase by phase: trace generation throughput
/// per kernel, single-run simulation per kernel x memory model, the fig5
/// sweep through the SweepRunner, and the Pattern-block closed-form fold
/// against its per-record reference. Each phase appends one record in the
/// bench_timing.json shape (points_per_s carries the phase's native
/// throughput), so scripts/bench_timing.sh can gate any of them.
///
/// Usage: hetsim_bench [--smoke] [--phase NAME]
///   --smoke   shrink every phase to a seconds-scale CI gate
///   --phase   run only the named phase (tracegen|singlerun|sweep|fastpath)
///
//===----------------------------------------------------------------------===//

#include "common/WallTimer.h"
#include "core/Experiments.h"
#include "memory/MemorySystem.h"
#include "trace/ComputeBlock.h"
#include "trace/TraceCache.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace hetsim;

namespace {

struct BenchOptions {
  bool Smoke = false;
  std::string Phase; ///< Empty = all phases.

  bool runs(const char *Name) const {
    return Phase.empty() || Phase == Name;
  }
};

/// Appends a bench_timing.json record for a hand-timed phase: Points is
/// the phase's native unit (records, runs, sweep points), so
/// points_per_s carries its throughput.
void reportPhase(const std::string &Bench, uint64_t Points,
                 double WallSeconds, double TraceGenSeconds = 0) {
  SweepTelemetry T;
  T.Jobs = 1;
  T.JobsSource = "explicit";
  T.Points = Points;
  T.WallSeconds = WallSeconds;
  T.TraceGenSeconds = TraceGenSeconds;
  std::printf("  -> %s\n", T.summary().c_str());
  appendBenchTiming(Bench, T);
}

/// Phase 1: raw trace-generation throughput (records/s) per kernel.
void benchTraceGen(const BenchOptions &Opts) {
  std::printf("=== tracegen: generator throughput ===\n");
  const uint64_t Records = Opts.Smoke ? 200000 : 2000000;
  uint64_t Total = 0;
  double GenBefore = double(traceGenNanos()) * 1e-9;
  WallTimer Timer;
  for (KernelId Kernel : allKernels()) {
    KernelDataLayout Layout =
        KernelDataLayout::makeLinear(Kernel, region::CpuPrivateBase);
    GenRequest Req;
    Req.Pu = PuKind::Cpu;
    Req.InstCount = Records;
    WallTimer KernelTimer;
    TraceBuffer Trace =
        KernelTraceGenerator::forKernel(Kernel).generateCompute(Req, Layout);
    double Secs = KernelTimer.elapsedSeconds();
    Total += Trace.size();
    std::printf("  %-12s %8.1f Mrec/s (%llu records, %.3f s)\n",
                kernelName(Kernel), double(Trace.size()) / Secs / 1e6,
                static_cast<unsigned long long>(Trace.size()), Secs);
  }
  reportPhase("hetsim_bench_tracegen", Total, Timer.elapsedSeconds(),
              double(traceGenNanos()) * 1e-9 - GenBefore);
}

/// Phase 2: end-to-end single runs, each kernel on each memory model.
void benchSingleRun(const BenchOptions &Opts) {
  std::printf("=== singlerun: per kernel x model ===\n");
  std::vector<CaseStudy> Studies(allCaseStudies());
  std::vector<KernelId> Kernels(allKernels());
  if (Opts.Smoke) {
    Studies = {CaseStudy::CpuGpu, CaseStudy::Fusion};
    Kernels = {KernelId::Reduction, KernelId::MergeSort};
  }
  uint64_t Runs = 0;
  double GenBefore = double(traceGenNanos()) * 1e-9;
  WallTimer Timer;
  for (CaseStudy Study : Studies) {
    SystemConfig Config = SystemConfig::forCaseStudy(Study);
    for (KernelId Kernel : Kernels) {
      WallTimer RunTimer;
      HeteroSimulator Sim(Config);
      RunResult Result = Sim.run(Kernel);
      std::printf("  %-12s %-12s %7.0f ms wall, %.3g sim-ns\n",
                  caseStudyName(Study), kernelName(Kernel),
                  RunTimer.elapsedSeconds() * 1e3, Result.Time.totalNs());
      ++Runs;
    }
  }
  reportPhase("hetsim_bench_singlerun", Runs, Timer.elapsedSeconds(),
              double(traceGenNanos()) * 1e-9 - GenBefore);
}

/// Phase 3: the fig5 sweep through the SweepRunner (serial, cold cache —
/// the configuration the committed BENCH_sweep.json baseline gates).
void benchSweep(const BenchOptions &Opts) {
  std::printf("=== sweep: fig5 case studies through SweepRunner ===\n");
  TraceCache::global().clear();
  std::vector<SweepPoint> Points;
  for (CaseStudy Study : allCaseStudies())
    for (KernelId Kernel : allKernels()) {
      if (Opts.Smoke &&
          (Study != CaseStudy::CpuGpu || Kernel > KernelId::Convolution))
        continue;
      Points.emplace_back(SystemConfig::forCaseStudy(Study), Kernel);
    }
  SweepRunner Runner(1);
  Runner.run(Points);
  std::printf("  -> %s\n", Runner.telemetry().summary().c_str());
  appendBenchTiming("hetsim_bench_sweep", Runner.telemetry());
}

/// Phase 4: the Pattern-block closed-form fold against its per-record
/// reference — the speedup the fast path buys on explicitly periodic
/// steady-state traces, with an equality check.
void benchFastPath(const BenchOptions &Opts) {
  std::printf("=== fastpath: pattern fold vs per-record reference ===\n");
  PatternBlock Pattern;
  const uint32_t Pc = 0x400;
  for (unsigned I = 0; I != 6; ++I)
    Pattern.Prologue.emitAlu(Opcode::IntAlu, Pc + I * 4, uint8_t(8 + I), 0);
  Pattern.Body.emitAlu(Opcode::IntAlu, Pc + 0x40, 8, 9);
  Pattern.Body.emitAlu(Opcode::FpMac, Pc + 0x44, 9, 8, 10);
  Pattern.Body.emitAlu(Opcode::IntAlu, Pc + 0x48, 10, 9);
  Pattern.Body.emitBranch(Pc + 0x4C, /*Taken=*/true);
  Pattern.BodyRepeats = Opts.Smoke ? 250000 : 2500000;
  auto Block = std::make_shared<const BlockTrace>(std::move(Pattern));

  auto RunOnce = [&](int Mode) {
    MemHierConfig HierConfig;
    MemorySystem Mem(HierConfig);
    Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
    CpuCore Core(CpuConfig(), Mem);
    setFastPathForTesting(Mode);
    SegmentResult R = Mode == 0 ? Core.run(Block->materialized(), 0)
                                : Core.run(SharedTrace(Block), 0);
    setFastPathForTesting(-1);
    return R;
  };

  WallTimer RefTimer;
  SegmentResult Ref = RunOnce(0);
  double RefSecs = RefTimer.elapsedSeconds();
  WallTimer FastTimer;
  SegmentResult Fast = RunOnce(1);
  double FastSecs = FastTimer.elapsedSeconds();

  bool Equal = Ref.Cycles == Fast.Cycles && Ref.Insts == Fast.Insts &&
               Ref.BranchMispredicts == Fast.BranchMispredicts &&
               Ref.ICacheMisses == Fast.ICacheMisses;
  std::printf("  %llu records: reference %.3f s, fold %.4f s (%.0fx), "
              "results %s\n",
              static_cast<unsigned long long>(Block->totalRecords()), RefSecs,
              FastSecs, FastSecs > 0 ? RefSecs / FastSecs : 0.0,
              Equal ? "identical" : "DIFFER");
  reportPhase("hetsim_bench_fastpath", Block->totalRecords(), FastSecs);
  if (!Equal) {
    std::fprintf(stderr, "error: fold diverged from reference\n");
    std::exit(1);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0) {
      Opts.Smoke = true;
    } else if (std::strcmp(Argv[I], "--phase") == 0 && I + 1 != Argc) {
      Opts.Phase = Argv[++I];
    } else {
      std::fprintf(stderr,
                   "usage: hetsim_bench [--smoke] "
                   "[--phase tracegen|singlerun|sweep|fastpath]\n");
      return 2;
    }
  }

  std::printf("hetsim_bench%s\n\n", Opts.Smoke ? " (smoke)" : "");
  if (Opts.runs("tracegen"))
    benchTraceGen(Opts);
  if (Opts.runs("singlerun"))
    benchSingleRun(Opts);
  if (Opts.runs("sweep"))
    benchSweep(Opts);
  if (Opts.runs("fastpath"))
    benchFastPath(Opts);
  return 0;
}
