//===- bench/ablation_noc.cpp - Ring vs mesh interconnect -----------------===//
///
/// \file
/// Ablation I: swap the Table II ring bus for a 2D mesh (Table I's
/// "interconnection" systems use meshes/fabrics) on the IDEAL system and
/// compare uncore behaviour. With seven stops the topologies have similar
/// diameters, so end-to-end numbers barely move — evidence that at this
/// scale the NoC choice, like the address space, is mostly decoupled from
/// the communication mechanism.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation I: ring vs mesh NoC (IDEAL system) ===\n\n");

  TextTable Table({"kernel", "noc", "total_us", "noc msgs", "avg hops",
                   "contention cyc"});
  for (KernelId Kernel :
       {KernelId::Reduction, KernelId::Convolution, KernelId::MergeSort}) {
    for (const char *Noc : {"ring", "mesh"}) {
      ConfigStore Overrides;
      Overrides.set("mem.noc", Noc);
      SystemConfig Config =
          SystemConfig::forCaseStudy(CaseStudy::IdealHetero, Overrides);
      HeteroSimulator Sim(Config);
      RunResult R = Sim.run(Kernel);
      const NocStats &Stats = Sim.memory().noc().stats();
      double AvgHops = Stats.Messages == 0
                           ? 0.0
                           : double(Stats.TotalHops) / double(Stats.Messages);
      Table.addRow({kernelName(Kernel), Noc,
                    formatDouble(R.Time.totalNs() / 1e3, 1),
                    formatCount(Stats.Messages), formatDouble(AvgHops, 2),
                    formatCount(Stats.ContentionCycles)});
    }
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("The 3x3 mesh and 7-stop ring have comparable diameters at\n"
              "this system size; topology becomes a first-order concern\n"
              "only at many more stops (e.g. Rigel's 1000-core fabric).\n");
  return 0;
}
