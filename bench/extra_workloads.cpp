//===- bench/extra_workloads.cpp - Beyond-Table-III workloads -------------===//
///
/// \file
/// Ablation H: three workloads the paper does not evaluate (stream triad,
/// histogram, SpMV) on three design points, plus a problem-size scaling
/// study showing where communication stops mattering — the design-space
/// tool applied to new inputs.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/ExtraWorkloads.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation H: extra workloads (stream triad, histogram, "
              "spmv) ===\n\n");

  TextTable Table({"workload", "system", "total_us", "comm_us",
                   "comm_frac"});
  for (ExtraWorkloadId Id : allExtraWorkloads()) {
    for (CaseStudy Study :
         {CaseStudy::CpuGpu, CaseStudy::Fusion, CaseStudy::IdealHetero}) {
      SystemConfig Config = SystemConfig::forCaseStudy(Study);
      HeteroSimulator Sim(Config);
      LoweredProgram Program = buildExtraWorkload(Id, Config, 128 * 1024);
      RunResult R = Sim.runLowered(Program);
      Table.addRow({extraWorkloadName(Id), Config.Name,
                    formatDouble(R.Time.totalNs() / 1e3, 1),
                    formatDouble(R.Time.CommunicationNs / 1e3, 1),
                    formatPercent(R.Time.commFraction())});
    }
  }
  std::printf("%s\n", Table.render().c_str());

  std::printf("Scaling study: stream triad on CPU+GPU, communication "
              "fraction vs size\n\n");
  TextTable Scale({"elements", "bytes moved", "total_us", "comm_frac"});
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  HeteroSimulator Sim(Config);
  for (uint64_t Elements : {4096ull, 16384ull, 65536ull, 262144ull,
                            1048576ull}) {
    LoweredProgram Program =
        buildExtraWorkload(ExtraWorkloadId::StreamTriad, Config, Elements);
    RunResult R = Sim.runLowered(Program);
    Scale.addRow({formatCount(Elements), formatCount(R.TransferredBytes),
                  formatDouble(R.Time.totalNs() / 1e3, 1),
                  formatPercent(R.Time.commFraction())});
  }
  std::printf("%s\n", Scale.render().c_str());
  std::printf("Fixed API costs dominate small problems; bandwidth terms\n"
              "dominate large ones — the crossover the Table IV model\n"
              "implies.\n");
  return 0;
}
