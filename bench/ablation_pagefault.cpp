//===- bench/ablation_pagefault.cpp - lib-pf cost sweep -------------------===//
///
/// \file
/// Ablation B: sweep the shared-space page-fault handling cost (lib-pf,
/// Table IV default 42000) on the LRB system. Page faults are LRB's main
/// communication overhead; at lib-pf=0 LRB's aperture transfers make it
/// far cheaper than synchronous PCI-E memcpys, while large lib-pf values
/// make it the most expensive system.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation B: lib-pf sweep on LRB ===\n\n");

  static const uint64_t LibPfValues[] = {0,     5000,  20000,
                                         42000, 84000, 168000};
  static const uint64_t PageSizes[] = {4096, 16384, 65536, 262144};

  // One sweep: PCI-E reference + lib-pf grid + page-size grid.
  std::vector<SweepPoint> Points;
  Points.emplace_back(SystemConfig::forCaseStudy(CaseStudy::CpuGpu),
                      KernelId::Reduction);
  for (uint64_t LibPf : LibPfValues) {
    ConfigStore Overrides;
    Overrides.setInt("comm.lib_pf", int64_t(LibPf));
    Points.emplace_back(SystemConfig::forCaseStudy(CaseStudy::Lrb, Overrides),
                        KernelId::Reduction);
  }
  for (uint64_t PageBytes : PageSizes) {
    ConfigStore Overrides;
    Overrides.setInt("mem.gpu_page_bytes", int64_t(PageBytes));
    Points.emplace_back(SystemConfig::forCaseStudy(CaseStudy::Lrb, Overrides),
                        KernelId::Reduction);
  }
  SweepRunner Runner;
  std::vector<RunResult> Results = Runner.run(Points);

  double PciComm = Results[0].Time.CommunicationNs / 1e3;
  std::printf("CPU+GPU (PCI-E) communication reference: %.1f us\n\n",
              PciComm);

  TextTable Table({"lib_pf", "page_faults", "comm_us", "total_us",
                   "vs CPU+GPU comm"});
  size_t Next = 1;
  for (uint64_t LibPf : LibPfValues) {
    const RunResult &R = Results[Next++];
    double Comm = R.Time.CommunicationNs / 1e3;
    Table.addRow({std::to_string(LibPf), std::to_string(R.PageFaults),
                  formatDouble(Comm, 1),
                  formatDouble(R.Time.totalNs() / 1e3, 1),
                  formatDouble(Comm / PciComm, 2)});
  }
  std::printf("%s\n", Table.render().c_str());

  std::printf("GPU page size also sets the fault count (large pages\n"
              "amortize lib-pf, Section II-A1):\n\n");
  TextTable Pages({"gpu_page_bytes", "page_faults", "comm_us"});
  for (uint64_t PageBytes : PageSizes) {
    const RunResult &R = Results[Next++];
    Pages.addRow({std::to_string(PageBytes), std::to_string(R.PageFaults),
                  formatDouble(R.Time.CommunicationNs / 1e3, 1)});
  }
  std::printf("%s", Pages.render().c_str());
  std::fprintf(stderr, "%s\n", Runner.telemetry().summary().c_str());
  appendBenchTiming("ablation_pagefault", Runner.telemetry());
  return 0;
}
