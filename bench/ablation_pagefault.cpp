//===- bench/ablation_pagefault.cpp - lib-pf cost sweep -------------------===//
///
/// \file
/// Ablation B: sweep the shared-space page-fault handling cost (lib-pf,
/// Table IV default 42000) on the LRB system. Page faults are LRB's main
/// communication overhead; at lib-pf=0 LRB's aperture transfers make it
/// far cheaper than synchronous PCI-E memcpys, while large lib-pf values
/// make it the most expensive system.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation B: lib-pf sweep on LRB ===\n\n");

  HeteroSimulator CpuGpu(SystemConfig::forCaseStudy(CaseStudy::CpuGpu));
  double PciComm =
      CpuGpu.run(KernelId::Reduction).Time.CommunicationNs / 1e3;
  std::printf("CPU+GPU (PCI-E) communication reference: %.1f us\n\n",
              PciComm);

  TextTable Table({"lib_pf", "page_faults", "comm_us", "total_us",
                   "vs CPU+GPU comm"});
  for (uint64_t LibPf :
       {0ull, 5000ull, 20000ull, 42000ull, 84000ull, 168000ull}) {
    ConfigStore Overrides;
    Overrides.setInt("comm.lib_pf", int64_t(LibPf));
    HeteroSimulator Sim(SystemConfig::forCaseStudy(CaseStudy::Lrb, Overrides));
    RunResult R = Sim.run(KernelId::Reduction);
    double Comm = R.Time.CommunicationNs / 1e3;
    Table.addRow({std::to_string(LibPf), std::to_string(R.PageFaults),
                  formatDouble(Comm, 1),
                  formatDouble(R.Time.totalNs() / 1e3, 1),
                  formatDouble(Comm / PciComm, 2)});
  }
  std::printf("%s\n", Table.render().c_str());

  std::printf("GPU page size also sets the fault count (large pages\n"
              "amortize lib-pf, Section II-A1):\n\n");
  TextTable Pages({"gpu_page_bytes", "page_faults", "comm_us"});
  for (uint64_t PageBytes : {4096ull, 16384ull, 65536ull, 262144ull}) {
    ConfigStore Overrides;
    Overrides.setInt("mem.gpu_page_bytes", int64_t(PageBytes));
    HeteroSimulator Sim(SystemConfig::forCaseStudy(CaseStudy::Lrb, Overrides));
    RunResult R = Sim.run(KernelId::Reduction);
    Pages.addRow({std::to_string(PageBytes), std::to_string(R.PageFaults),
                  formatDouble(R.Time.CommunicationNs / 1e3, 1)});
  }
  std::printf("%s", Pages.render().c_str());
  return 0;
}
