//===- bench/ablation_shared_llc.cpp - Disjoint space, shared LLC ---------===//
///
/// \file
/// Ablation G: Section II-A2 stresses that "even though memory spaces are
/// not shared, they can still share the cache" (Intel Sandy Bridge).
/// This ablation compares a Fusion-style disjoint system without a shared
/// LLC against a Sandy-Bridge-style one where the GPU also fills the L3:
/// address-space organization and cache sharing are independent axes.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation G: disjoint space with vs without shared LLC "
              "(Section II-A2) ===\n\n");

  TextTable Table({"kernel", "total_us priv/shared", "gpu avg mem lat (cyc)",
                   "gpu dram lines", "gpu L3 hit rate"});
  for (KernelId Kernel :
       {KernelId::Reduction, KernelId::Convolution, KernelId::MergeSort,
        KernelId::KMeans}) {
    HeteroSimulator Fusion(SystemConfig::forCaseStudy(CaseStudy::Fusion));
    RunResult Private = Fusion.run(Kernel);
    double PrivateLat =
        Private.GpuTotal.MemAccesses == 0
            ? 0
            : double(Private.GpuTotal.MemLatencySum) /
                  double(Private.GpuTotal.MemAccesses);
    uint64_t PrivateDram = Fusion.memory().cpuDram().stats().Reads;

    HeteroSimulator Sandy(SystemConfig::sandyBridgeStyle());
    RunResult Shared = Sandy.run(Kernel);
    double SharedLat = Shared.GpuTotal.MemAccesses == 0
                           ? 0
                           : double(Shared.GpuTotal.MemLatencySum) /
                                 double(Shared.GpuTotal.MemAccesses);
    uint64_t SharedDram = Sandy.memory().cpuDram().stats().Reads;
    double L3Hit = Sandy.memory().l3().stats().hitRate();

    Table.addRow({kernelName(Kernel),
                  formatDouble(Private.Time.totalNs() / 1e3, 1) + " / " +
                      formatDouble(Shared.Time.totalNs() / 1e3, 1),
                  formatDouble(PrivateLat, 1) + " -> " +
                      formatDouble(SharedLat, 1),
                  formatCount(PrivateDram) + " -> " + formatCount(SharedDram),
                  formatPercent(L3Hit)});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("Both systems keep disjoint address spaces and the same\n"
              "memory-controller communication; only LLC sharing differs.\n"
              "Sharing the LLC cuts the GPU's average memory latency and\n"
              "its DRAM traffic, while total time is bounded elsewhere —\n"
              "the axes are independent, as Section II-A2 argues.\n");
  return 0;
}
