//===- bench/fig6_comm_overhead.cpp - Regenerates Figure 6 ----------------===//
///
/// \file
/// Figure 6: communication overhead alone for the evaluated systems.
/// Expected shape: CPU+GPU pays full synchronous PCI-E costs; LRB pays
/// aperture transfers + ownership + first-touch page faults; GMAC hides
/// most copy time behind computation; Fusion's memory-controller path is
/// small; IDEAL-HETERO is zero.
///
//===----------------------------------------------------------------------===//

#include "common/AsciiChart.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Figure 6: communication overhead ===\n\n");
  SweepTelemetry Telemetry;
  std::vector<ExperimentRow> Rows = runCaseStudies({}, 0, &Telemetry);
  TextTable Table = renderFigure6(Rows);
  maybeExportCsv("fig6", Table);
  std::printf("%s\n", Table.render().c_str());

  for (KernelId Kernel : allKernels()) {
    std::printf("%s, communication time:\n", kernelName(Kernel));
    std::vector<ChartBar> Bars;
    for (const ExperimentRow &Row : Rows)
      if (Row.Kernel == Kernel)
        Bars.push_back(
            {Row.System, Row.Result.Time.CommunicationNs / 1e3});
    std::printf("%s\n", renderBarChart(Bars, 48, "us").c_str());
  }

  std::printf("Shape checks (paper, Section V-A):\n");
  auto CommOf = [&Rows](const char *System, KernelId Kernel) {
    for (const ExperimentRow &Row : Rows)
      if (Row.System == System && Row.Kernel == Kernel)
        return Row.Result.Time.CommunicationNs;
    return -1.0;
  };
  for (KernelId Kernel : allKernels()) {
    double CpuGpu = CommOf("CPU+GPU", Kernel);
    double Gmac = CommOf("GMAC", Kernel);
    double Fusion = CommOf("Fusion", Kernel);
    double Ideal = CommOf("IDEAL-HETERO", Kernel);
    std::printf("  %-12s GMAC<CPU+GPU:%s  Fusion<CPU+GPU:%s  IDEAL==0:%s\n",
                kernelName(Kernel), Gmac < CpuGpu ? "yes" : "NO",
                Fusion < CpuGpu ? "yes" : "NO",
                Ideal == 0.0 ? "yes" : "NO");
  }

  std::fprintf(stderr, "%s\n", Telemetry.summary().c_str());
  appendBenchTiming("fig6_comm_overhead", Telemetry);
  return 0;
}
