//===- bench/ablation_energy.cpp - Design-point energy comparison ---------===//
///
/// \file
/// Ablation F: the paper's conclusion argues the partially shared space
/// "provides opportunities to optimize hardware and save power/energy".
/// This ablation quantifies run energy per design point with an
/// event-based energy model: PCI-E systems pay transfer energy, LRB pays
/// fault handling, Fusion pays DRAM copy energy, and IDEAL pays only the
/// (coherent) on-chip traffic.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"
#include "energy/EnergyModel.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation F: energy per design point ===\n\n");

  for (KernelId Kernel : {KernelId::Reduction, KernelId::MergeSort}) {
    std::printf("%s:\n\n", kernelName(Kernel));
    TextTable Table({"system", "total_uJ", "core", "cache", "dram", "noc",
                     "comm", "uJ per us"});
    for (CaseStudy Study : allCaseStudies()) {
      SystemConfig Config = SystemConfig::forCaseStudy(Study);
      HeteroSimulator Sim(Config);
      RunResult R = Sim.run(Kernel);
      bool Pci = Config.Connection == ConnectionKind::PciExpress;
      EnergyReport E =
          computeEnergy(EnergyParams(), Sim.memory(), R, Pci);
      double TotalUs = R.Time.totalNs() / 1e3;
      Table.addRow({Config.Name, formatDouble(E.totalUj(), 1),
                    formatDouble(E.CoreNj / 1e3, 1),
                    formatDouble(E.CacheNj / 1e3, 1),
                    formatDouble(E.DramNj / 1e3, 1),
                    formatDouble(E.NetworkNj / 1e3, 2),
                    formatDouble(E.CommNj / 1e3, 1),
                    formatDouble(E.totalUj() / TotalUs, 2)});
    }
    std::printf("%s\n", Table.render().c_str());
  }
  std::printf("Communication energy mirrors Figure 6's time shape: the\n"
              "synchronous PCI-E system spends the most, the integrated\n"
              "designs the least — the quantitative backing for the\n"
              "paper's power/energy argument.\n");
  return 0;
}
