//===- bench/table1_survey.cpp - Regenerates Table I ----------------------===//
///
/// \file
/// Table I: summary of previously proposed heterogeneous computing systems
/// and their memory systems (plus Rigel as a homogeneous reference).
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "core/SystemDescriptor.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Table I: survey of heterogeneous memory systems ===\n\n");
  std::printf("%s\n", renderTable1().render().c_str());

  std::printf("Observations the paper draws from this table:\n");
  std::printf("  - disjoint address spaces dominate existing systems "
              "(%u of %zu rows)\n",
              surveyCount(AddressSpaceKind::Disjoint),
              tableOneSurvey().size());
  std::printf("  - no system is simultaneously unified, fully hardware-"
              "coherent, and strongly consistent: %s\n",
              surveyHasUnifiedFullyCoherentStrong() ? "VIOLATED" : "holds");
  return 0;
}
