//===- bench/table3_benchmarks.cpp - Regenerates Table III ----------------===//
///
/// \file
/// Table III: benchmark characteristics, measured from the abstract kernel
/// programs (instruction totals, communication counts, initial transfer
/// sizes) plus the instruction mix measured from generated traces.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"
#include "trace/KernelTraceGenerator.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Table III: benchmark characteristics (measured) ===\n\n");
  TextTable Table = renderTable3();
  maybeExportCsv("table3", Table);
  std::printf("%s\n", Table.render().c_str());

  std::printf("Measured instruction mix of each generated CPU trace:\n\n");
  TextTable Mix({"kernel", "loads", "stores", "branches", "alu",
                 "mem_frac"});
  for (KernelId Kernel : allKernels()) {
    KernelDataLayout Layout = KernelDataLayout::makeLinear(Kernel, 0x10000000);
    GenRequest Req;
    Req.Pu = PuKind::Cpu;
    Req.InstCount = kernelCharacteristics(Kernel).CpuInsts;
    TraceBuffer Trace =
        KernelTraceGenerator::forKernel(Kernel).generateCompute(Req, Layout);
    TraceMix M = Trace.computeMix();
    Mix.addRow({kernelName(Kernel), formatCount(M.Loads),
                formatCount(M.Stores), formatCount(M.Branches),
                formatCount(M.Alu),
                formatPercent(double(M.Loads + M.Stores) / double(M.Total))});
  }
  std::printf("%s", Mix.render().c_str());
  return 0;
}
