//===- bench/table5_programmability.cpp - Regenerates Table V -------------===//
///
/// \file
/// Table V: source lines needed to handle data communication under each
/// address space (Section V-C). The counts are produced by emitting the
/// actual host statements each model requires; the emitted code for the
/// reduction kernel is shown below the table.
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Table V: communication source lines ===\n");
  std::printf("(paper: matrix mul 0/2/9/6, merge sort 0/2/6/4, dct 0/2/6/4,"
              "\n reduction 0/2/9/6, convolution 0/4/9/6, k-mean 0/6/6/4)\n\n");
  TextTable Table = renderTable5();
  maybeExportCsv("table5", Table);
  std::printf("%s\n", Table.render().c_str());

  std::printf("Ordering check (Section V-C): unified < partially shared "
              "<= ADSM < disjoint\n\n");

  std::printf("Emitted host statements, reduction kernel:\n");
  for (AddressSpaceKind Kind :
       {AddressSpaceKind::PartiallyShared, AddressSpaceKind::Adsm,
        AddressSpaceKind::Disjoint}) {
    HostSource Source = emitCommunicationSource(KernelId::Reduction, Kind);
    std::printf("\n  [%s] %u lines\n", addressSpaceName(Kind),
                Source.lineCount());
    for (const std::string &Statement : Source.Statements)
      std::printf("    %s\n", Statement.c_str());
  }
  return 0;
}
