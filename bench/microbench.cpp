//===- bench/microbench.cpp - Simulator micro-benchmarks ------------------===//
///
/// \file
/// google-benchmark measurements of the simulator's own building blocks:
/// cache access, DRAM scheduling, ring traversal, branch prediction,
/// trace generation, and a full small kernel run. These track simulator
/// performance, not paper results.
///
//===----------------------------------------------------------------------===//

#include "cache/Cache.h"
#include "core/Experiments.h"
#include "cpu/BranchPredictor.h"
#include "dram/Dram.h"
#include "interconnect/RingBus.h"
#include "trace/KernelTraceGenerator.h"

#include <benchmark/benchmark.h>

using namespace hetsim;

static void BM_CacheAccess(benchmark::State &State) {
  Cache L1(CacheConfig::cpuL1D());
  Addr A = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(L1.access(A, false));
    A += CacheLineBytes;
    A &= (1 << 20) - 1;
  }
}
BENCHMARK(BM_CacheAccess);

static void BM_DramAccess(benchmark::State &State) {
  DramSystem Dram;
  Addr A = 0;
  Cycle Now = 0;
  for (auto _ : State) {
    Now = Dram.access(A, Now, false);
    A += CacheLineBytes;
  }
}
BENCHMARK(BM_DramAccess);

static void BM_DramFrFcfsBatch(benchmark::State &State) {
  for (auto _ : State) {
    DramSystem Dram;
    for (unsigned I = 0; I != 256; ++I)
      Dram.enqueue(64 * I, false);
    benchmark::DoNotOptimize(Dram.drainFrFcfs(0));
  }
}
BENCHMARK(BM_DramFrFcfsBatch);

static void BM_RingTraverse(benchmark::State &State) {
  RingBus Ring;
  Cycle Now = 0;
  for (auto _ : State) {
    Now = Ring.traverse(ring::CpuStop, ring::MemCtrlStop, Now);
  }
}
BENCHMARK(BM_RingTraverse);

static void BM_GsharePredict(benchmark::State &State) {
  GsharePredictor Predictor;
  Addr Pc = 0x400;
  bool Taken = true;
  for (auto _ : State) {
    Predictor.update(Pc, Taken);
    Pc += 4;
    Taken = !Taken;
  }
}
BENCHMARK(BM_GsharePredict);

static void BM_TraceGeneration(benchmark::State &State) {
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::Reduction, 0x10000000);
  GenRequest Req;
  Req.Pu = PuKind::Cpu;
  Req.InstCount = 10000;
  for (auto _ : State) {
    TraceBuffer Trace = KernelTraceGenerator::forKernel(KernelId::Reduction)
                            .generateCompute(Req, Layout);
    benchmark::DoNotOptimize(Trace.size());
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}
BENCHMARK(BM_TraceGeneration);

static void BM_FullKernelRun(benchmark::State &State) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  for (auto _ : State) {
    HeteroSimulator Sim(Config);
    RunResult R = Sim.run(KernelId::Reduction);
    benchmark::DoNotOptimize(R.Time.totalNs());
  }
}
BENCHMARK(BM_FullKernelRun)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
