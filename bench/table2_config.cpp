//===- bench/table2_config.cpp - Regenerates Table II ---------------------===//
///
/// \file
/// Table II: the baseline system configuration used by every experiment.
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Table II: baseline system configuration ===\n\n");
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  std::printf("%s\n", renderTable2(Config).render().c_str());
  std::printf("Cache latencies follow Table II (the paper derived them "
              "with CACTI 6.5).\n");
  return 0;
}
