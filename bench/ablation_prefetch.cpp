//===- bench/ablation_prefetch.cpp - L2 stream-prefetch ablation ----------===//
///
/// \file
/// Ablation E: the Table II baseline has no prefetcher; this ablation
/// adds an L2 stream prefetcher and sweeps its degree. Streaming kernels
/// (reduction, convolution) gain; the hot-table kernel (k-means) barely
/// moves; the win is orthogonal to the memory-model choice, supporting
/// the paper's separation of concerns.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation E: L2 stream prefetching (IDEAL system) "
              "===\n\n");

  static const KernelId Kernels[] = {KernelId::Reduction,
                                     KernelId::Convolution,
                                     KernelId::MergeSort, KernelId::KMeans};

  // Grid: per kernel, no-prefetch baseline then degrees 1/2/4.
  std::vector<SweepPoint> Points;
  SystemConfig Baseline = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  std::vector<SystemConfig> Prefetchers;
  for (unsigned Degree : {1u, 2u, 4u}) {
    ConfigStore Overrides;
    Overrides.setBool("mem.l2_prefetch", true);
    Overrides.setInt("mem.prefetch_degree", Degree);
    Prefetchers.push_back(
        SystemConfig::forCaseStudy(CaseStudy::IdealHetero, Overrides));
  }
  for (KernelId Kernel : Kernels) {
    Points.emplace_back(Baseline, Kernel);
    for (const SystemConfig &Config : Prefetchers)
      Points.emplace_back(Config, Kernel);
  }
  SweepRunner Runner;
  std::vector<RunResult> Results = Runner.run(Points);

  TextTable Table({"kernel", "no prefetch us", "degree=1", "degree=2",
                   "degree=4", "best gain"});
  size_t Next = 0;
  for (KernelId Kernel : Kernels) {
    std::vector<double> Totals;
    for (unsigned I = 0; I != 4; ++I)
      Totals.push_back(Results[Next++].Time.totalNs() / 1e3);
    double Best = *std::min_element(Totals.begin() + 1, Totals.end());
    Table.addRow({kernelName(Kernel), formatDouble(Totals[0], 1),
                  formatDouble(Totals[1], 1), formatDouble(Totals[2], 1),
                  formatDouble(Totals[3], 1),
                  formatPercent(1.0 - Best / Totals[0])});
  }
  std::printf("%s\n", Table.render().c_str());
  std::fprintf(stderr, "%s\n", Runner.telemetry().summary().c_str());
  appendBenchTiming("ablation_prefetch", Runner.telemetry());
  std::printf("Prefetching shortens parallel/sequential compute only; it\n"
              "does not change communication costs, so the case-study\n"
              "orderings of Figures 5/6 are unaffected.\n");
  return 0;
}
