//===- bench/ablation_prefetch.cpp - L2 stream-prefetch ablation ----------===//
///
/// \file
/// Ablation E: the Table II baseline has no prefetcher; this ablation
/// adds an L2 stream prefetcher and sweeps its degree. Streaming kernels
/// (reduction, convolution) gain; the hot-table kernel (k-means) barely
/// moves; the win is orthogonal to the memory-model choice, supporting
/// the paper's separation of concerns.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation E: L2 stream prefetching (IDEAL system) "
              "===\n\n");

  TextTable Table({"kernel", "no prefetch us", "degree=1", "degree=2",
                   "degree=4", "best gain"});
  for (KernelId Kernel :
       {KernelId::Reduction, KernelId::Convolution, KernelId::MergeSort,
        KernelId::KMeans}) {
    std::vector<double> Totals;
    {
      HeteroSimulator Sim(SystemConfig::forCaseStudy(CaseStudy::IdealHetero));
      Totals.push_back(Sim.run(Kernel).Time.totalNs() / 1e3);
    }
    for (unsigned Degree : {1u, 2u, 4u}) {
      ConfigStore Overrides;
      Overrides.setBool("mem.l2_prefetch", true);
      Overrides.setInt("mem.prefetch_degree", Degree);
      HeteroSimulator Sim(
          SystemConfig::forCaseStudy(CaseStudy::IdealHetero, Overrides));
      Totals.push_back(Sim.run(Kernel).Time.totalNs() / 1e3);
    }
    double Best = *std::min_element(Totals.begin() + 1, Totals.end());
    Table.addRow({kernelName(Kernel), formatDouble(Totals[0], 1),
                  formatDouble(Totals[1], 1), formatDouble(Totals[2], 1),
                  formatDouble(Totals[3], 1),
                  formatPercent(1.0 - Best / Totals[0])});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("Prefetching shortens parallel/sequential compute only; it\n"
              "does not change communication costs, so the case-study\n"
              "orderings of Figures 5/6 are unaffected.\n");
  return 0;
}
