//===- bench/ablation_comm_latency.cpp - PCI-E cost sweep -----------------===//
///
/// \file
/// Ablation A: sweep the api-pci fixed cost (Table IV default 33250) and
/// watch the disjoint CPU+GPU system converge toward Fusion as the
/// interconnect gets cheaper — the paper's point that the performance
/// delta between systems is mostly the hardware communication mechanism.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation A: api-pci base-cost sweep (reduction, "
              "k-mean) ===\n\n");

  // Fusion reference points.
  HeteroSimulator Fusion(SystemConfig::forCaseStudy(CaseStudy::Fusion));
  double FusionReduction =
      Fusion.run(KernelId::Reduction).Time.CommunicationNs / 1e3;
  double FusionKMeans =
      Fusion.run(KernelId::KMeans).Time.CommunicationNs / 1e3;
  std::printf("Fusion communication reference: reduction %.1f us, "
              "k-mean %.1f us\n\n",
              FusionReduction, FusionKMeans);

  TextTable Table({"api_pci_base", "reduction comm_us", "reduction total_us",
                   "k-mean comm_us", "k-mean total_us"});
  for (uint64_t Base : {0ull, 1000ull, 5000ull, 10000ull, 33250ull,
                        66500ull, 133000ull}) {
    ConfigStore Overrides;
    Overrides.setInt("comm.api_pci_base", int64_t(Base));
    HeteroSimulator Sim(
        SystemConfig::forCaseStudy(CaseStudy::CpuGpu, Overrides));
    RunResult Reduction = Sim.run(KernelId::Reduction);
    RunResult KMeans = Sim.run(KernelId::KMeans);
    Table.addRow({std::to_string(Base),
                  formatDouble(Reduction.Time.CommunicationNs / 1e3, 1),
                  formatDouble(Reduction.Time.totalNs() / 1e3, 1),
                  formatDouble(KMeans.Time.CommunicationNs / 1e3, 1),
                  formatDouble(KMeans.Time.totalNs() / 1e3, 1)});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("Even at api_pci_base=0 the PCI-E system still pays the\n"
              "bandwidth term (bytes at 16GB/s), so it cannot reach\n"
              "Fusion's memory-controller cost for small transfers.\n");
  return 0;
}
