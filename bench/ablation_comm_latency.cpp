//===- bench/ablation_comm_latency.cpp - PCI-E cost sweep -----------------===//
///
/// \file
/// Ablation A: sweep the api-pci fixed cost (Table IV default 33250) and
/// watch the disjoint CPU+GPU system converge toward Fusion as the
/// interconnect gets cheaper — the paper's point that the performance
/// delta between systems is mostly the hardware communication mechanism.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation A: api-pci base-cost sweep (reduction, "
              "k-mean) ===\n\n");

  static const uint64_t Bases[] = {0,     1000,  5000,  10000,
                                   33250, 66500, 133000};

  // One sweep: the two Fusion reference runs plus the (base x kernel)
  // grid, fanned out together over the sweep engine.
  std::vector<SweepPoint> Points;
  SystemConfig Fusion = SystemConfig::forCaseStudy(CaseStudy::Fusion);
  Points.emplace_back(Fusion, KernelId::Reduction);
  Points.emplace_back(Fusion, KernelId::KMeans);
  for (uint64_t Base : Bases) {
    ConfigStore Overrides;
    Overrides.setInt("comm.api_pci_base", int64_t(Base));
    SystemConfig Config =
        SystemConfig::forCaseStudy(CaseStudy::CpuGpu, Overrides);
    Points.emplace_back(Config, KernelId::Reduction);
    Points.emplace_back(Config, KernelId::KMeans);
  }
  SweepRunner Runner;
  std::vector<RunResult> Results = Runner.run(Points);

  std::printf("Fusion communication reference: reduction %.1f us, "
              "k-mean %.1f us\n\n",
              Results[0].Time.CommunicationNs / 1e3,
              Results[1].Time.CommunicationNs / 1e3);

  TextTable Table({"api_pci_base", "reduction comm_us", "reduction total_us",
                   "k-mean comm_us", "k-mean total_us"});
  size_t Next = 2;
  for (uint64_t Base : Bases) {
    const RunResult &Reduction = Results[Next++];
    const RunResult &KMeans = Results[Next++];
    Table.addRow({std::to_string(Base),
                  formatDouble(Reduction.Time.CommunicationNs / 1e3, 1),
                  formatDouble(Reduction.Time.totalNs() / 1e3, 1),
                  formatDouble(KMeans.Time.CommunicationNs / 1e3, 1),
                  formatDouble(KMeans.Time.totalNs() / 1e3, 1)});
  }
  std::printf("%s\n", Table.render().c_str());
  std::fprintf(stderr, "%s\n", Runner.telemetry().summary().c_str());
  appendBenchTiming("ablation_comm_latency", Runner.telemetry());
  std::printf("Even at api_pci_base=0 the PCI-E system still pays the\n"
              "bandwidth term (bytes at 16GB/s), so it cannot reach\n"
              "Fusion's memory-controller cost for small transfers.\n");
  return 0;
}
