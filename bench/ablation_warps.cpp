//===- bench/ablation_warps.cpp - GPU latency-hiding sweep ----------------===//
///
/// \file
/// Ablation K: sweep the GPU's resident warp count. The Fermi-like GPU
/// hides memory latency and branch stalls by issuing from other warps;
/// with one warp the in-order pipeline is exposed to every stall, and the
/// streaming/branchy kernels degrade accordingly. The knee of the curve
/// shows how much thread-level parallelism the memory system demands.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "common/Units.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation K: GPU warp-count sweep (IDEAL system) ===\n\n");

  static const KernelId Kernels[] = {KernelId::Reduction,
                                     KernelId::MergeSort, KernelId::KMeans};
  static const unsigned WarpCounts[] = {1, 2, 4, 8, 16, 32};

  std::vector<SweepPoint> Points;
  for (KernelId Kernel : Kernels)
    for (unsigned Warps : WarpCounts) {
      SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
      Config.Gpu.NumWarps = Warps;
      Points.emplace_back(std::move(Config), Kernel);
    }
  SweepRunner Runner;
  std::vector<RunResult> Results = Runner.run(Points);

  TextTable Table({"kernel", "1 warp", "2", "4", "8", "16", "32",
                   "1-warp slowdown"});
  size_t Next = 0;
  for (KernelId Kernel : Kernels) {
    std::vector<std::string> Cells = {kernelName(Kernel)};
    double OneWarpUs = 0, ManyWarpUs = 0;
    for (unsigned Warps : WarpCounts) {
      const RunResult &R = Results[Next++];
      // Report the GPU-side time: parallel span is often CPU-bound, so
      // show the GPU segment itself.
      double GpuUs =
          cyclesToNs(PuKind::Gpu, R.GpuTotal.Cycles) / 1e3;
      Cells.push_back(formatDouble(GpuUs, 1));
      if (Warps == 1)
        OneWarpUs = GpuUs;
      ManyWarpUs = GpuUs;
    }
    Cells.push_back(formatDouble(OneWarpUs / ManyWarpUs, 2) + "x");
    Table.addRow(Cells);
  }
  std::printf("%s\n", Table.render().c_str());
  std::fprintf(stderr, "%s\n", Runner.telemetry().summary().c_str());
  appendBenchTiming("ablation_warps", Runner.telemetry());
  std::printf("GPU-side microseconds per kernel round. The branchy merge\n"
              "sort (a stall per compare) and the streaming reduction gain\n"
              "the most from added warps; beyond the knee the cores sit on\n"
              "the 1-IPC issue floor.\n");
  return 0;
}
