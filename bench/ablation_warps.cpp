//===- bench/ablation_warps.cpp - GPU latency-hiding sweep ----------------===//
///
/// \file
/// Ablation K: sweep the GPU's resident warp count. The Fermi-like GPU
/// hides memory latency and branch stalls by issuing from other warps;
/// with one warp the in-order pipeline is exposed to every stall, and the
/// streaming/branchy kernels degrade accordingly. The knee of the curve
/// shows how much thread-level parallelism the memory system demands.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "common/Units.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation K: GPU warp-count sweep (IDEAL system) ===\n\n");

  TextTable Table({"kernel", "1 warp", "2", "4", "8", "16", "32",
                   "1-warp slowdown"});
  for (KernelId Kernel :
       {KernelId::Reduction, KernelId::MergeSort, KernelId::KMeans}) {
    std::vector<std::string> Cells = {kernelName(Kernel)};
    double OneWarpUs = 0, ManyWarpUs = 0;
    for (unsigned Warps : {1u, 2u, 4u, 8u, 16u, 32u}) {
      SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
      Config.Gpu.NumWarps = Warps;
      HeteroSimulator Sim(Config);
      RunResult R = Sim.run(Kernel);
      // Report the GPU-side time: parallel span is often CPU-bound, so
      // show the GPU segment itself.
      double GpuUs =
          cyclesToNs(PuKind::Gpu, R.GpuTotal.Cycles) / 1e3;
      Cells.push_back(formatDouble(GpuUs, 1));
      if (Warps == 1)
        OneWarpUs = GpuUs;
      ManyWarpUs = GpuUs;
    }
    Cells.push_back(formatDouble(OneWarpUs / ManyWarpUs, 2) + "x");
    Table.addRow(Cells);
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("GPU-side microseconds per kernel round. The branchy merge\n"
              "sort (a stall per compare) and the streaming reduction gain\n"
              "the most from added warps; beyond the knee the cores sit on\n"
              "the 1-IPC issue floor.\n");
  return 0;
}
