//===- bench/ablation_contention.cpp - Shared-resource interference -------===//
///
/// \file
/// Ablation J: the default driver runs a parallel phase's CPU segment and
/// GPU segment back to back against shared uncore state; the interleaved
/// mode alternates time-ordered slices so the PUs genuinely contend for
/// the L3, NoC, and DRAM. The difference quantifies cross-PU memory
/// interference — small with four DRAM channels, visible when the shared
/// memory system is squeezed to one channel.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

namespace {
SweepPoint contentionPoint(CaseStudy Study, KernelId Kernel,
                           bool Interleaved, unsigned Channels) {
  ConfigStore Overrides;
  Overrides.setBool("sys.interleaved_contention", Interleaved);
  SystemConfig Config = SystemConfig::forCaseStudy(Study, Overrides);
  Config.Hier.Dram.Channels = Channels;
  return SweepPoint(std::move(Config), Kernel);
}
} // namespace

int main() {
  std::printf("=== Ablation J: cross-PU memory interference (IDEAL "
              "system) ===\n\n");

  static const KernelId Kernels[] = {KernelId::Reduction,
                                     KernelId::MergeSort};
  std::vector<SweepPoint> Points;
  for (KernelId Kernel : Kernels)
    for (unsigned Channels : {4u, 1u}) {
      Points.push_back(
          contentionPoint(CaseStudy::IdealHetero, Kernel, false, Channels));
      Points.push_back(
          contentionPoint(CaseStudy::IdealHetero, Kernel, true, Channels));
    }
  SweepRunner Runner;
  std::vector<RunResult> Results = Runner.run(Points);

  TextTable Table({"kernel", "channels", "sequential-pass par_us",
                   "interleaved par_us", "interference"});
  size_t Next = 0;
  for (KernelId Kernel : Kernels) {
    for (unsigned Channels : {4u, 1u}) {
      double Plain = Results[Next++].Time.ParallelNs / 1e3;
      double Inter = Results[Next++].Time.ParallelNs / 1e3;
      Table.addRow({kernelName(Kernel), std::to_string(Channels),
                    formatDouble(Plain, 1), formatDouble(Inter, 1),
                    formatPercent(Inter / Plain - 1.0)});
    }
  }
  std::printf("%s\n", Table.render().c_str());
  std::fprintf(stderr, "%s\n", Runner.telemetry().summary().c_str());
  appendBenchTiming("ablation_contention", Runner.telemetry());
  std::printf("Enable with sys.interleaved_contention=true. With one CPU\n"
              "and one GPU core the interference is second-order (a few\n"
              "percent on the streaming kernel, none on cache-resident\n"
              "ones): the paper's single-core-per-PU baseline justifiably\n"
              "ignores it, but the knob is what a many-core study of the\n"
              "integrated designs would sweep.\n");
  return 0;
}
