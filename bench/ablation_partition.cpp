//===- bench/ablation_partition.cpp - Work-partitioning sweep -------------===//
///
/// \file
/// Ablation D: the paper divides each kernel's work evenly between the
/// PUs and cites Qilin [25] for finding optimal partitioning points.
/// This ablation implements that search: sweep the CPU work fraction on
/// the ideal system and report the best split per kernel. Kernels whose
/// GPU half is cheaper per instruction favour GPU-heavy splits; branchy
/// kernels (merge sort) favour the CPU.
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Ablation D: work partitioning (Qilin-style sweep, "
              "IDEAL system) ===\n\n");

  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  SweepTelemetry Total, Telemetry;

  // Detailed curve for one kernel.
  std::printf("Reduction, total time vs CPU work fraction:\n\n");
  TextTable Curve({"cpu_fraction", "total_us", "parallel_us"});
  for (const PartitionPoint &Point :
       sweepPartition(Config, KernelId::Reduction, 10, 0, &Telemetry))
    Curve.addRow({formatDouble(Point.CpuFraction, 1),
                  formatDouble(Point.TotalNs / 1e3, 1),
                  formatDouble(Point.ParallelNs / 1e3, 1)});
  Total.merge(Telemetry);
  std::printf("%s\n", Curve.render().c_str());

  // Optimal split per kernel (coarser sweep to keep runtime modest).
  std::printf("Best split per kernel (11-point sweep):\n\n");
  TextTable Best({"kernel", "best cpu_fraction", "best total_us",
                  "even-split total_us", "speedup"});
  for (KernelId Kernel : allKernels()) {
    // Matrix multiply is large; a coarser sweep suffices there.
    unsigned Steps = Kernel == KernelId::MatrixMul ? 4 : 10;
    std::vector<PartitionPoint> Points =
        sweepPartition(Config, Kernel, Steps, 0, &Telemetry);
    Total.merge(Telemetry);
    PartitionPoint BestPoint = Points.front();
    double EvenNs = 0;
    for (const PartitionPoint &Point : Points) {
      if (Point.TotalNs < BestPoint.TotalNs)
        BestPoint = Point;
      if (Point.CpuFraction > 0.49 && Point.CpuFraction < 0.51)
        EvenNs = Point.TotalNs;
    }
    if (EvenNs == 0)
      EvenNs = Points[Points.size() / 2].TotalNs;
    Best.addRow({kernelName(Kernel), formatDouble(BestPoint.CpuFraction, 2),
                 formatDouble(BestPoint.TotalNs / 1e3, 1),
                 formatDouble(EvenNs / 1e3, 1),
                 formatDouble(EvenNs / BestPoint.TotalNs, 2)});
  }
  std::printf("%s\n", Best.render().c_str());
  std::printf("The paper's even split is the 0.5 column; the sweep shows\n"
              "how much an adaptive mapper (Qilin) could recover.\n");
  std::fprintf(stderr, "%s\n", Total.summary().c_str());
  appendBenchTiming("ablation_partition", Total);
  return 0;
}
