//===- bench/fig7_address_space.cpp - Regenerates Figure 7 ----------------===//
///
/// \file
/// Figure 7: the four memory-address-space options (UNI, PAS, DIS, ADSM)
/// with a shared cache and ideal communication overhead. Expected shape
/// (Section V-B): essentially no performance difference — the address
/// space design itself does not affect performance; it is about
/// programmability.
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <cstdio>
#include <map>

using namespace hetsim;

int main() {
  std::printf("=== Figure 7: address-space options, ideal communication "
              "===\n\n");
  SweepTelemetry Telemetry;
  std::vector<ExperimentRow> Rows = runAddressSpaceStudy({}, 0, &Telemetry);
  TextTable Table = renderFigure7(Rows);
  maybeExportCsv("fig7", Table);
  std::printf("%s\n", Table.render().c_str());

  std::printf("Max spread across address spaces per kernel (paper: almost "
              "none):\n");
  std::map<KernelId, std::pair<double, double>> Range;
  for (const ExperimentRow &Row : Rows) {
    auto &R = Range.try_emplace(Row.Kernel, 1e300, 0.0).first->second;
    R.first = std::min(R.first, Row.Result.Time.totalNs());
    R.second = std::max(R.second, Row.Result.Time.totalNs());
  }
  for (KernelId Kernel : allKernels())
    std::printf("  %-12s %+0.2f%%\n", kernelName(Kernel),
                100.0 * (Range[Kernel].second / Range[Kernel].first - 1.0));

  std::fprintf(stderr, "%s\n", Telemetry.summary().c_str());
  appendBenchTiming("fig7_address_space", Telemetry);
  return 0;
}
