//===- bench/fig5_case_studies.cpp - Regenerates Figure 5 -----------------===//
///
/// \file
/// Figure 5: execution-time breakdown (sequential / parallel /
/// communication) of the five heterogeneous architecture configurations
/// over the six kernels. Expected shape (Section V-A): parallel compute
/// dominates everywhere; CPU+GPU, LRB, and GMAC run longer than
/// IDEAL-HETERO and Fusion; merge sort and k-means show the largest
/// communication fractions.
///
//===----------------------------------------------------------------------===//

#include "common/AsciiChart.h"
#include "core/Experiments.h"

#include <cstdio>
#include <map>

using namespace hetsim;

int main() {
  std::printf("=== Figure 5: case-study time breakdown ===\n\n");
  SweepTelemetry Telemetry;
  std::vector<ExperimentRow> Rows = runCaseStudies({}, 0, &Telemetry);
  TextTable Table = renderFigure5(Rows);
  maybeExportCsv("fig5", Table);
  std::printf("%s\n", Table.render().c_str());

  // The figure itself: stacked seq/par/comm bars, normalized per kernel
  // to the IDEAL-HETERO total (as the paper plots them).
  std::map<KernelId, double> Ideal;
  for (const ExperimentRow &Row : Rows)
    if (Row.System == "IDEAL-HETERO")
      Ideal[Row.Kernel] = Row.Result.Time.totalNs();
  for (KernelId Kernel : allKernels()) {
    std::printf("%s (normalized to IDEAL-HETERO = 1.0):\n",
                kernelName(Kernel));
    std::vector<StackedBar> Bars;
    for (const ExperimentRow &Row : Rows) {
      if (Row.Kernel != Kernel)
        continue;
      double Ref = Ideal[Kernel];
      StackedBar Bar;
      Bar.Label = Row.System;
      Bar.Components = {Row.Result.Time.SequentialNs / Ref,
                        Row.Result.Time.ParallelNs / Ref,
                        Row.Result.Time.CommunicationNs / Ref};
      Bars.push_back(std::move(Bar));
    }
    std::printf("%s\n",
                renderStackedBarChart(Bars, {"seq", "par", "comm"}, "#=.",
                                      48, "x")
                    .c_str());
  }

  // Per-kernel communication fraction averaged over the five systems, the
  // quantity the paper quotes (merge sort 12%, k-mean 7.6%).
  std::printf("Average communication fraction per kernel (over the five "
              "systems):\n");
  std::map<KernelId, std::pair<double, unsigned>> Acc;
  for (const ExperimentRow &Row : Rows) {
    Acc[Row.Kernel].first += Row.Result.Time.commFraction();
    Acc[Row.Kernel].second += 1;
  }
  for (KernelId Kernel : allKernels())
    std::printf("  %-12s %5.1f%%\n", kernelName(Kernel),
                100.0 * Acc[Kernel].first / Acc[Kernel].second);

  // Wall-clock telemetry goes to stderr so stdout stays byte-identical
  // across job counts (determinism checks diff it).
  std::fprintf(stderr, "%s\n", Telemetry.summary().c_str());
  appendBenchTiming("fig5_case_studies", Telemetry);
  return 0;
}
