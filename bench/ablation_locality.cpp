//===- bench/ablation_locality.cpp - Hybrid shared-cache locality ---------===//
///
/// \file
/// Ablation C: the hybrid locality management of Section II-B5. A victim
/// working set is pinned in the shared L3 with explicit `push` operations
/// while a streaming interloper sweeps a large range. Under plain LRU the
/// stream evicts the victim's lines; under HybridLru explicit blocks are
/// protected from implicit fills (and the explicit capacity cap keeps one
/// way free for the stream).
///
//===----------------------------------------------------------------------===//

#include "cache/Cache.h"
#include "common/StringUtil.h"
#include "common/TextTable.h"

#include <cstdio>

using namespace hetsim;

namespace {

struct SweepResult {
  double VictimHitRate;
  unsigned SurvivingExplicitLines;
  uint64_t BypassedFills;
};

SweepResult runSweep(ReplacementKind Replacement, uint64_t VictimBytes,
                     uint64_t StreamBytes) {
  CacheConfig Config;
  Config.Name = "l3-slice";
  Config.SizeBytes = 256 * 1024; // One L3 slice for a fast experiment.
  Config.Ways = 8;
  Config.Replacement = Replacement;
  Cache L3(Config);

  const Addr VictimBase = 0x10000000;
  const Addr StreamBase = 0x40000000;

  // Explicitly place ("push") the victim working set.
  for (Addr Offset = 0; Offset < VictimBytes; Offset += CacheLineBytes)
    L3.access(VictimBase + Offset, false,
              /*MarkExplicit=*/Replacement == ReplacementKind::HybridLru);

  // A streaming interloper (implicitly managed) sweeps through.
  for (Addr Offset = 0; Offset < StreamBytes; Offset += CacheLineBytes)
    L3.access(StreamBase + Offset, false);

  // Measure how much of the victim set survived.
  uint64_t Hits = 0, Total = 0;
  L3.resetStats();
  for (Addr Offset = 0; Offset < VictimBytes; Offset += CacheLineBytes) {
    if (L3.probe(VictimBase + Offset))
      ++Hits;
    ++Total;
  }
  SweepResult Result;
  Result.VictimHitRate = double(Hits) / double(Total);
  Result.SurvivingExplicitLines = L3.residentExplicitLines();
  Result.BypassedFills = L3.stats().BypassedFills;
  return Result;
}

} // namespace

int main() {
  std::printf("=== Ablation C: hybrid locality in the shared cache "
              "(Section II-B5) ===\n\n");

  TextTable Table({"victim_set", "stream", "LRU victim survival",
                   "Hybrid victim survival"});
  const uint64_t StreamBytes = 4ull << 20;
  for (uint64_t VictimKb : {32ull, 64ull, 128ull, 192ull}) {
    uint64_t VictimBytes = VictimKb << 10;
    SweepResult Lru =
        runSweep(ReplacementKind::Lru, VictimBytes, StreamBytes);
    SweepResult Hybrid =
        runSweep(ReplacementKind::HybridLru, VictimBytes, StreamBytes);
    Table.addRow({formatBytes(VictimBytes), formatBytes(StreamBytes),
                  formatPercent(Lru.VictimHitRate),
                  formatPercent(Hybrid.VictimHitRate)});
  }
  std::printf("%s\n", Table.render().c_str());

  std::printf("The implicit stream can never evict explicit blocks, and\n"
              "the explicit-way cap (ways-1) keeps the stream serviceable\n"
              "— exactly the two hardware rules Section II-B5 requires:\n"
              "a locality tag bit compared in replacement, and an explicit\n"
              "capacity smaller than the physical cache.\n");
  return 0;
}
