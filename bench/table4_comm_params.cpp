//===- bench/table4_comm_params.cpp - Regenerates Table IV ----------------===//
///
/// \file
/// Table IV: the communication-overhead parameters, plus the resulting
/// end-to-end copy costs for each kernel's initial transfer on each
/// fabric (the concrete numbers the case studies pay).
///
//===----------------------------------------------------------------------===//

#include "comm/MemControllerLink.h"
#include "comm/PciAperture.h"
#include "comm/PciExpressLink.h"
#include "common/StringUtil.h"
#include "common/Units.h"
#include "core/Experiments.h"
#include "dram/Dram.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("=== Table IV: communication-overhead parameters ===\n\n");
  CommParams Params;
  std::printf("%s\n", renderTable4(Params).render().c_str());

  std::printf("Resulting initial-transfer costs (CPU cycles @3.5GHz):\n\n");
  TextTable Costs({"kernel", "bytes", "api-pci", "aperture(api-tr)",
                   "mem-controller"});
  for (KernelId Kernel : allKernels()) {
    uint64_t Bytes = kernelCharacteristics(Kernel).InitialTransferBytes;
    PciExpressLink Pci{Params};
    PciAperture Aperture{Params};
    DramSystem Dram;
    MemControllerLink Mc(Dram);
    Costs.addRow(
        {kernelName(Kernel), formatCount(Bytes),
         formatCount(
             Pci.transfer(Bytes, TransferDir::HostToDevice, 0).CpuBusyCycles),
         formatCount(Aperture.transfer(Bytes, TransferDir::HostToDevice, 0)
                         .CpuBusyCycles),
         formatCount(Mc.transfer(Bytes, TransferDir::HostToDevice, 0)
                         .CpuBusyCycles)});
  }
  std::printf("%s", Costs.render().c_str());
  return 0;
}
