#!/usr/bin/env bash
# Times the Figure 5/6 case-study sweep serially and in parallel and
# records the results as BENCH_sweep.json.
#
# Usage: scripts/bench_timing.sh [jobs] [outfile]
#   jobs     parallel worker count for the wide run (default: nproc)
#   outfile  result path (default: BENCH_sweep.json)
#
# Four configurations are measured:
#   serial-nocache  jobs=1, trace cache off — the pre-sweep-engine baseline
#   serial          jobs=1, trace cache on
#   serial-sampled  jobs=1, trace cache on, HETSIM_MEMFAST=sampled — the
#                   reduced-fidelity memory fast path (DESIGN.md §11);
#                   must sustain >=10 points/s on the fig5 sweep
#   parallel        jobs=N, trace cache on
#
# Speedups are relative to serial-nocache. On multi-core hosts the
# parallel run should be >=2x at jobs>=4; on a single core only the
# trace-cache and sampled-fidelity wins show up.
#
# When the outfile already holds a previous record, each variant's new
# points_per_s is compared against it: any regression beyond 20% fails
# the run (the candidate goes to <outfile>.rej, the old record stays).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
OUTFILE="${2:-BENCH_sweep.json}"
BENCH=build/bench/fig5_case_studies

# Physical core count of the host, independent of the current CPU
# affinity mask: `nproc` reads the mask, so a taskset-restricted or
# containerized run would record 1 even on a big machine.
HOST_CORES=$(nproc --all 2>/dev/null \
             || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
if [ "$JOBS" -gt "$HOST_CORES" ] 2>/dev/null; then
  echo "warning: jobs=$JOBS exceeds host_cores=$HOST_CORES;" \
       "parallel speedup will be limited to what the host can run" >&2
fi

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built; run cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

TMPDIR_TIMING=$(mktemp -d)
trap 'rm -rf "$TMPDIR_TIMING"' EXIT

# Runs one configuration; prints "wall_s points points_per_s trace_gen_s
# simulate_s lock_wait_s cache_hits cache_misses".
run_once() { # name jobs cache_flag [memfast_mode]
  local log="$TMPDIR_TIMING/$1.json"
  HETSIM_JOBS="$2" HETSIM_TRACE_CACHE="$3" HETSIM_MEMFAST="${4:-0}" \
    HETSIM_TIMING_JSON="$log" \
    "$BENCH" >/dev/null 2>&1
  # The timing line has a fixed key order; pull fields with sed.
  sed -n '1s/.*"points":\([0-9]*\),"jobs":[0-9]*,"wall_s":\([0-9.]*\),"points_per_s":\([0-9.]*\).*"cache_hits":\([0-9]*\),"cache_misses":\([0-9]*\).*"trace_gen_s":\([0-9.]*\),"simulate_s":\([0-9.]*\),"lock_wait_s":\([0-9.]*\).*/\2 \1 \3 \6 \7 \8 \4 \5/p' "$log"
}

echo "== serial baseline (jobs=1, trace cache off) =="
read -r BASE_WALL BASE_POINTS BASE_PPS BASE_GEN BASE_SIM BASE_LOCK \
     BASE_HITS BASE_MISSES <<<"$(run_once serial-nocache 1 0)"
echo "   ${BASE_WALL}s for ${BASE_POINTS} points (${BASE_PPS} points/s," \
     "gen ${BASE_GEN}s / sim ${BASE_SIM}s / wait ${BASE_LOCK}s)"

echo "== serial (jobs=1, trace cache on) =="
read -r SER_WALL SER_POINTS SER_PPS SER_GEN SER_SIM SER_LOCK \
     SER_HITS SER_MISSES <<<"$(run_once serial 1 1)"
echo "   ${SER_WALL}s for ${SER_POINTS} points (${SER_PPS} points/s," \
     "gen ${SER_GEN}s / sim ${SER_SIM}s / wait ${SER_LOCK}s," \
     "cache ${SER_HITS}h/${SER_MISSES}m)"

echo "== serial-sampled (jobs=1, trace cache on, HETSIM_MEMFAST=sampled) =="
read -r SAMP_WALL SAMP_POINTS SAMP_PPS SAMP_GEN SAMP_SIM SAMP_LOCK \
     SAMP_HITS SAMP_MISSES <<<"$(run_once serial-sampled 1 1 sampled)"
echo "   ${SAMP_WALL}s for ${SAMP_POINTS} points (${SAMP_PPS} points/s," \
     "gen ${SAMP_GEN}s / sim ${SAMP_SIM}s / wait ${SAMP_LOCK}s," \
     "cache ${SAMP_HITS}h/${SAMP_MISSES}m)"

echo "== parallel (jobs=$JOBS, trace cache on) =="
read -r PAR_WALL PAR_POINTS PAR_PPS PAR_GEN PAR_SIM PAR_LOCK \
     PAR_HITS PAR_MISSES <<<"$(run_once parallel "$JOBS" 1)"
echo "   ${PAR_WALL}s for ${PAR_POINTS} points (${PAR_PPS} points/s," \
     "gen ${PAR_GEN}s / sim ${PAR_SIM}s / wait ${PAR_LOCK}s," \
     "cache ${PAR_HITS}h/${PAR_MISSES}m)"

SER_SPEEDUP=$(awk "BEGIN{printf \"%.2f\", $BASE_WALL/$SER_WALL}")
SAMP_SPEEDUP=$(awk "BEGIN{printf \"%.2f\", $BASE_WALL/$SAMP_WALL}")
PAR_SPEEDUP=$(awk "BEGIN{printf \"%.2f\", $BASE_WALL/$PAR_WALL}")

# The sampled fast path exists to make serial sweeps interactive; hold it
# to the documented floor so a fidelity "optimisation" that stops paying
# off gets caught here rather than in a user's terminal.
if awk "BEGIN{exit !($SAMP_PPS < 10)}"; then
  echo "error: serial-sampled ${SAMP_PPS} points/s is below the 10" \
       "points/s floor for HETSIM_MEMFAST=sampled" >&2
  exit 1
fi

# Looks up a variant's points_per_s in a previous record.
old_pps() { # variant
  sed -n "s/.*\"variant\": \"$1\".*\"points_per_s\": \([0-9.]*\).*/\1/p" \
      "$OUTFILE"
}

CANDIDATE="$TMPDIR_TIMING/candidate.json"
cat > "$CANDIDATE" <<EOF
{
  "bench": "fig5_case_studies",
  "host_cores": $HOST_CORES,
  "runs": [
    {"variant": "serial-nocache", "jobs": 1, "points": $BASE_POINTS, "wall_s": $BASE_WALL, "points_per_s": $BASE_PPS, "speedup": 1.00, "trace_gen_s": $BASE_GEN, "simulate_s": $BASE_SIM, "lock_wait_s": $BASE_LOCK, "cache_hits": $BASE_HITS, "cache_misses": $BASE_MISSES},
    {"variant": "serial", "jobs": 1, "points": $SER_POINTS, "wall_s": $SER_WALL, "points_per_s": $SER_PPS, "speedup": $SER_SPEEDUP, "trace_gen_s": $SER_GEN, "simulate_s": $SER_SIM, "lock_wait_s": $SER_LOCK, "cache_hits": $SER_HITS, "cache_misses": $SER_MISSES},
    {"variant": "serial-sampled", "jobs": 1, "memfast": "sampled", "points": $SAMP_POINTS, "wall_s": $SAMP_WALL, "points_per_s": $SAMP_PPS, "speedup": $SAMP_SPEEDUP, "trace_gen_s": $SAMP_GEN, "simulate_s": $SAMP_SIM, "lock_wait_s": $SAMP_LOCK, "cache_hits": $SAMP_HITS, "cache_misses": $SAMP_MISSES},
    {"variant": "parallel", "jobs": $JOBS, "points": $PAR_POINTS, "wall_s": $PAR_WALL, "points_per_s": $PAR_PPS, "speedup": $PAR_SPEEDUP, "trace_gen_s": $PAR_GEN, "simulate_s": $PAR_SIM, "lock_wait_s": $PAR_LOCK, "cache_hits": $PAR_HITS, "cache_misses": $PAR_MISSES}
  ]
}
EOF

REGRESSED=0
if [ -f "$OUTFILE" ]; then
  for spec in "serial-nocache $BASE_PPS" "serial $SER_PPS" \
              "serial-sampled $SAMP_PPS" "parallel $PAR_PPS"; do
    read -r variant new_pps <<<"$spec"
    prev_pps="$(old_pps "$variant")"
    [ -n "$prev_pps" ] || continue
    if awk "BEGIN{exit !($new_pps < 0.8 * $prev_pps)}"; then
      echo "regression: $variant ${new_pps} points/s is >20% below the" \
           "recorded ${prev_pps} points/s" >&2
      REGRESSED=1
    fi
  done
fi

if [ "$REGRESSED" = "1" ]; then
  cp "$CANDIDATE" "$OUTFILE.rej"
  echo "== kept $OUTFILE; rejected candidate written to $OUTFILE.rej ==" >&2
  exit 1
fi

cp "$CANDIDATE" "$OUTFILE"
echo "== wrote $OUTFILE (parallel speedup ${PAR_SPEEDUP}x over serial-nocache) =="
