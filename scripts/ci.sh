#!/usr/bin/env bash
# The full CI gate, in dependency order:
#   1. tier-1: default build + complete ctest suite
#   2. sanitizer: AddressSanitizer build + complete ctest suite
#   3. static analysis: scripts/lint.sh (clang-tidy if installed, plus the
#      hetsim_lint memory-model linter over the shipped design space)
#
# Usage: scripts/ci.sh
#
# Environment:
#   HETSIM_JOBS      worker threads per sweep (default: all cores)
#   HETSIM_SKIP_ASAN set to 1 to skip gate 2 (e.g. on hosts without ASan)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== gate 1: tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" >/dev/null
ctest --test-dir build --output-on-failure -j "$JOBS" | tail -3

if [ "${HETSIM_SKIP_ASAN:-0}" != "1" ]; then
  echo "== gate 2: AddressSanitizer build + tests =="
  cmake -B build-asan -S . -DHETSIM_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS" >/dev/null
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" | tail -3
else
  echo "== gate 2: skipped (HETSIM_SKIP_ASAN=1) =="
fi

echo "== gate 3: static analysis =="
scripts/lint.sh build

echo "== gate 4: metrics smoke =="
# One sweep point must emit a schema-valid metrics document that passes
# the DRAM traffic-conservation audit, plus a Chrome trace file.
SMOKE_DIR="build/obs-smoke"
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
HETSIM_TRACE_EVENTS="$SMOKE_DIR" build/tools/hetsim run --system Fusion \
  --kernel reduction --metrics "$SMOKE_DIR/metrics.json" >/dev/null
build/tools/hetsim_stats validate "$SMOKE_DIR/metrics.json"
build/tools/hetsim_stats audit "$SMOKE_DIR/metrics.json"
[ -s "$SMOKE_DIR/Fusion_reduction.trace.json" ] || {
  echo "ci: missing trace-event file" >&2
  exit 1
}

echo "ci: all gates passed"
