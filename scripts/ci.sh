#!/usr/bin/env bash
# The full CI gate, in dependency order:
#   1. tier-1: default build + complete ctest suite (unit label first, so
#      a broken build fails in seconds instead of after the sweeps)
#   2. sanitizers: AddressSanitizer and UBSan builds + complete ctest
#      suite, plus a ThreadSanitizer build running the concurrency suites
#      (thread pool, trace cache, sweep runner, result store)
#   3. static analysis: scripts/lint.sh (clang-tidy against the pinned
#      baseline, plus the hetsim_lint memory-model linter over the shipped
#      design space), then the differential race-verifier fuzz gate
#   4. metrics smoke: one run must emit schema-valid, conservation-clean
#      metrics plus a Chrome trace file
#   5. golden diff + paper fidelity: regenerate every checked artifact and
#      hold it against refs/golden (tight tolerances) and refs/paper
#      (paper-reported values and trends), then prove the sweep engine is
#      byte-deterministic across job counts
#
# Usage: scripts/ci.sh
#
# Environment:
#   HETSIM_JOBS       worker threads per sweep (default: all cores)
#   HETSIM_SKIP_ASAN  set to 1 to skip the ASan leg of gate 2
#   HETSIM_SKIP_UBSAN set to 1 to skip the UBSan leg of gate 2
#   HETSIM_SKIP_TSAN  set to 1 to skip the TSan leg of gate 2
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== gate 1: tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" >/dev/null
ctest --test-dir build -L unit --output-on-failure -j "$JOBS" | tail -3
ctest --test-dir build -L sweep --output-on-failure -j "$JOBS" | tail -3

echo "== gate 1b: fast-path + memfast differential + bench smoke =="
# The fast path must be bit-identical to the per-record reference
# (HETSIM_FASTPATH=0 vs =1), the memory-phase fold's exact tier must be
# bit-identical to the detailed walk (HETSIM_MEMFAST=0 vs =1, all six
# kernels on all five models — part of the fastpath suite), and the
# microbenchmark harness must complete a smoke pass (its fastpath phase
# self-checks fold equality and fails the run on divergence).
ctest --test-dir build -R fastpath --output-on-failure -j "$JOBS" | tail -3
HETSIM_TIMING_JSON=build/bench-smoke-timing.json \
  build/bench/hetsim_bench --smoke >/dev/null
# Memory-phase attribution must survive a smoke pass, and the sampled
# tier (never used by goldens) must still produce a schema-valid metrics
# document with its error bound reported.
HETSIM_TIMING_JSON=build/bench-smoke-timing.json \
  build/bench/hetsim_bench --smoke --phase memphase >/dev/null
HETSIM_MEMFAST=sampled build/tools/hetsim run --system CPU+GPU \
  --kernel reduction --metrics build/memfast-sampled-smoke.json >/dev/null
build/tools/hetsim_stats validate build/memfast-sampled-smoke.json

echo "== gate 1c: parallel scaling smoke (jobs=2 vs serial) =="
# A jobs=2 sweep must finish within 1.05x the serial wall — the gate that
# catches trace-generation ballooning / cache contention under parallel
# sweeps. The bench itself prints a visible SKIP notice (and enforces
# nothing) on single-core hosts, where the comparison would be noise.
HETSIM_TIMING_JSON=build/bench-smoke-timing.json \
  build/bench/hetsim_bench --smoke --phase scaling

if [ "${HETSIM_SKIP_ASAN:-0}" != "1" ]; then
  echo "== gate 2: AddressSanitizer build + tests =="
  cmake -B build-asan -S . -DHETSIM_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS" >/dev/null
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" | tail -3
  # Re-run the trace-cache stress suite a few extra times under ASan: its
  # single-flight and stable-pointer invariants only break in narrow race
  # windows, so give them more chances to misalign.
  ctest --test-dir build-asan -R TraceCacheStress --output-on-failure \
    --repeat until-fail:3 -j "$JOBS" | tail -3
else
  echo "== gate 2: ASan skipped (HETSIM_SKIP_ASAN=1) =="
fi

if [ "${HETSIM_SKIP_UBSAN:-0}" != "1" ]; then
  echo "== gate 2: UndefinedBehaviorSanitizer build + tests =="
  cmake -B build-ubsan -S . -DHETSIM_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "$JOBS" >/dev/null
  ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" | tail -3
else
  echo "== gate 2: UBSan skipped (HETSIM_SKIP_UBSAN=1) =="
fi

if [ "${HETSIM_SKIP_TSAN:-0}" != "1" ]; then
  echo "== gate 2: ThreadSanitizer build + concurrency tests =="
  # Only the concurrency-heavy suites: everything else is single-threaded
  # and already covered by ASan/UBSan, and a full TSan ctest run would
  # triple the gate's wall clock for no extra coverage.
  cmake -B build-tsan -S . -DHETSIM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target trace_cache_stress_test \
    threadpool_test sweep_test result_store_test >/dev/null
  ctest --test-dir build-tsan \
    -R 'TraceCache|ThreadPool|SweepRunner|ResultStore|Determinism' \
    --output-on-failure -j "$JOBS" | tail -3
else
  echo "== gate 2: TSan skipped (HETSIM_SKIP_TSAN=1) =="
fi

echo "== gate 3: static analysis =="
scripts/lint.sh build

echo "== gate 3b: differential race-verifier fuzz =="
# 1000 seeded mutation cases: every constructed ordering bug must be
# flagged with a structurally valid witness, and every verifier-clean
# program must replay race-free on every explored dynamic schedule.
build/tools/hetsim_lint --fuzz 1000 --seed 7

echo "== gate 4: metrics smoke =="
# One sweep point must emit a schema-valid metrics document that passes
# the DRAM traffic-conservation audit, plus a Chrome trace file.
SMOKE_DIR="build/obs-smoke"
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
HETSIM_TRACE_EVENTS="$SMOKE_DIR" build/tools/hetsim run --system Fusion \
  --kernel reduction --metrics "$SMOKE_DIR/metrics.json" >/dev/null
build/tools/hetsim_stats validate "$SMOKE_DIR/metrics.json"
build/tools/hetsim_stats audit "$SMOKE_DIR/metrics.json"
[ -s "$SMOKE_DIR/Fusion_reduction.trace.json" ] || {
  echo "ci: missing trace-event file" >&2
  exit 1
}

echo "== gate 5: golden diff + paper fidelity + determinism =="
# Regenerate every manifest artifact into a scratch directory so the gate
# checks the tree as built, not whatever is sitting in out/. microbench is
# wall-clock noise and is deliberately not under regression check.
CHECK_OUT="build/check-out"
rm -rf "$CHECK_OUT"
mkdir -p "$CHECK_OUT"
export HETSIM_CSV_DIR="$CHECK_OUT"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  [ "$name" = "microbench" ] && continue
  [ "$name" = "hetsim_bench" ] && continue # wall-clock output, not golden
  "$b" > "$CHECK_OUT/$name.txt" 2>/dev/null
done
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  "$e" > "$CHECK_OUT/example_$(basename "$e").txt" 2>&1
done
unset HETSIM_CSV_DIR
build/tools/hetsim_check diff --out "$CHECK_OUT" \
  --report build/check-report.txt
build/tools/hetsim_check fidelity --out "$CHECK_OUT"
build/tools/hetsim_check determinism --jobs "${HETSIM_JOBS:-8}"

echo "ci: all gates passed"
