#!/usr/bin/env bash
# Static-analysis gate: clang-tidy over src/ (when clang-tidy is
# installed) plus the hetsim_lint memory-model linter over every shipped
# (system x kernel) design point. Fails on any diagnostic from either.
#
# Usage: scripts/lint.sh [builddir]   (default: build)
#
# Environment:
#   HETSIM_JOBS  worker threads for hetsim_lint (default: all cores)
set -euo pipefail
BUILD="${1:-build}"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  echo "lint: no build at $BUILD/ -- run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

STATUS=0

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD/compile_commands.json" ]; then
    echo "lint: $BUILD/compile_commands.json missing -- reconfigure with cmake" >&2
    exit 1
  fi
  # WarningsAsErrors='*' in .clang-tidy makes any diagnostic fatal.
  mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
  if ! clang-tidy -p "$BUILD" --quiet "${SOURCES[@]}"; then
    STATUS=1
  fi
else
  echo "clang-tidy not installed; skipping (the memory-model lint below still runs)"
fi

echo "== hetsim_lint: shipped design space =="
if [ ! -x "$BUILD/tools/hetsim_lint" ]; then
  cmake --build "$BUILD" -j --target hetsim_lint >/dev/null
fi
if ! "$BUILD/tools/hetsim_lint" --all --jobs "${HETSIM_JOBS:-0}"; then
  STATUS=1
fi

if [ "$STATUS" -ne 0 ]; then
  echo "lint: FAILED" >&2
else
  echo "lint: clean"
fi
exit "$STATUS"
