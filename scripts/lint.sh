#!/usr/bin/env bash
# Static-analysis gate: clang-tidy over src/ (when clang-tidy is
# installed) held against the pinned baseline in refs/lint-baseline.txt
# -- any NEW warning fails; baselined ones are tolerated until paid down
# -- plus the hetsim_lint memory-model linter over every shipped
# (system x kernel) design point, which must be fully clean.
#
# Usage: scripts/lint.sh [builddir]   (default: build)
#
# Environment:
#   HETSIM_JOBS  worker threads for hetsim_lint (default: all cores)
#   CLANG_TIDY   clang-tidy binary to use (default: clang-tidy)
set -euo pipefail
BUILD="${1:-build}"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  echo "lint: no build at $BUILD/ -- run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

STATUS=0

echo "== clang-tidy =="
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
BASELINE="refs/lint-baseline.txt"
if command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  if [ ! -f "$BUILD/compile_commands.json" ]; then
    echo "lint: $BUILD/compile_commands.json missing -- reconfigure with cmake" >&2
    exit 1
  fi
  mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
  # WarningsAsErrors='*' in .clang-tidy upgrades every diagnostic, so the
  # raw exit code just means "any finding"; pass/fail is decided by the
  # baseline comparison below instead.
  TIDY_LOG="$BUILD/clang-tidy.log"
  "$CLANG_TIDY" -p "$BUILD" --quiet "${SOURCES[@]}" >"$TIDY_LOG" 2>/dev/null || true
  # Normalize findings to stable keys -- repo-relative path, no line:col
  # (pure line shifts must not churn the baseline), one per line, sorted.
  grep -E '(warning|error): .*\[[a-z]' "$TIDY_LOG" \
    | sed -E 's|^.*/src/|src/|; s|^(src/[^:]+):[0-9]+(:[0-9]+)?:|\1:|' \
    | sort -u >"$BUILD/clang-tidy.current" || true
  grep -v '^#' "$BASELINE" | sed '/^[[:space:]]*$/d' \
    | sort -u >"$BUILD/clang-tidy.known" || true
  comm -13 "$BUILD/clang-tidy.known" "$BUILD/clang-tidy.current" \
    >"$BUILD/clang-tidy.new"
  if [ -s "$BUILD/clang-tidy.new" ]; then
    echo "lint: new clang-tidy findings (not in $BASELINE):" >&2
    cat "$BUILD/clang-tidy.new" >&2
    STATUS=1
  else
    echo "clang-tidy: no new findings" \
      "($(wc -l <"$BUILD/clang-tidy.current") baselined)"
  fi
else
  echo "clang-tidy not installed; skipping (the memory-model lint below still runs)"
fi

echo "== hetsim_lint: shipped design space =="
if [ ! -x "$BUILD/tools/hetsim_lint" ]; then
  cmake --build "$BUILD" -j --target hetsim_lint >/dev/null
fi
if ! "$BUILD/tools/hetsim_lint" --all --jobs "${HETSIM_JOBS:-0}"; then
  STATUS=1
fi

if [ "$STATUS" -ne 0 ]; then
  echo "lint: FAILED" >&2
else
  echo "lint: clean"
fi
exit "$STATUS"
