#!/usr/bin/env bash
# Reproduces every table, figure, and ablation into an output directory.
#
# Usage: scripts/run_all.sh [outdir]   (default: out/)
#
# Environment:
#   HETSIM_JOBS  worker threads per sweep (default: all cores)
set -euo pipefail
OUT="${1:-out}"
mkdir -p "$OUT"
export HETSIM_CSV_DIR="$OUT"
export HETSIM_TIMING_JSON="$OUT/bench_timing.json"
rm -f "$HETSIM_TIMING_JSON"

echo "== building =="
# Prefer Ninja when available; otherwise let cmake pick its default.
if [ ! -f build/CMakeCache.txt ]; then
  if command -v ninja >/dev/null 2>&1; then
    cmake -B build -S . -G Ninja >/dev/null
  else
    cmake -B build -S . >/dev/null
  fi
fi
cmake --build build -j >/dev/null

echo "== tests =="
ctest --test-dir build 2>&1 | tee "$OUT/test_output.txt" | tail -2

echo "== tables, figures, ablations =="
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "-- $name"
  # stdout is the reproducible artifact; wall-clock telemetry goes to
  # stderr and $HETSIM_TIMING_JSON so the .txt stays machine-independent.
  "$b" > "$OUT/$name.txt" 2> >(tail -1 >&2)
done

echo "== examples =="
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  name=$(basename "$e")
  "$e" > "$OUT/example_$name.txt" 2>&1
done

echo "done: results in $OUT/ (sweep timing: $HETSIM_TIMING_JSON)"
