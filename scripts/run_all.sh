#!/usr/bin/env bash
# Reproduces every table, figure, and ablation into an output directory.
#
# Usage: scripts/run_all.sh [outdir]   (default: out/)
set -u
OUT="${1:-out}"
mkdir -p "$OUT"
export HETSIM_CSV_DIR="$OUT"

echo "== building =="
cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null

echo "== tests =="
ctest --test-dir build 2>&1 | tee "$OUT/test_output.txt" | tail -2

echo "== tables, figures, ablations =="
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "-- $name"
  "$b" > "$OUT/$name.txt" 2>&1
done

echo "== examples =="
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  name=$(basename "$e")
  "$e" > "$OUT/example_$name.txt" 2>&1
done

echo "done: results in $OUT/"
