file(REMOVE_RECURSE
  "CMakeFiles/locality_explorer.dir/locality_explorer.cpp.o"
  "CMakeFiles/locality_explorer.dir/locality_explorer.cpp.o.d"
  "locality_explorer"
  "locality_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
