
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/design_sweep.cpp" "examples/CMakeFiles/design_sweep.dir/design_sweep.cpp.o" "gcc" "examples/CMakeFiles/design_sweep.dir/design_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hetsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/hetsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hetsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/hetsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hetsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/hetsim_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hetsim_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hetsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hetsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hetsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
