
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/Cache.cpp" "src/cache/CMakeFiles/hetsim_cache.dir/Cache.cpp.o" "gcc" "src/cache/CMakeFiles/hetsim_cache.dir/Cache.cpp.o.d"
  "/root/repo/src/cache/Directory.cpp" "src/cache/CMakeFiles/hetsim_cache.dir/Directory.cpp.o" "gcc" "src/cache/CMakeFiles/hetsim_cache.dir/Directory.cpp.o.d"
  "/root/repo/src/cache/Mshr.cpp" "src/cache/CMakeFiles/hetsim_cache.dir/Mshr.cpp.o" "gcc" "src/cache/CMakeFiles/hetsim_cache.dir/Mshr.cpp.o.d"
  "/root/repo/src/cache/Scratchpad.cpp" "src/cache/CMakeFiles/hetsim_cache.dir/Scratchpad.cpp.o" "gcc" "src/cache/CMakeFiles/hetsim_cache.dir/Scratchpad.cpp.o.d"
  "/root/repo/src/cache/StreamPrefetcher.cpp" "src/cache/CMakeFiles/hetsim_cache.dir/StreamPrefetcher.cpp.o" "gcc" "src/cache/CMakeFiles/hetsim_cache.dir/StreamPrefetcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hetsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
