file(REMOVE_RECURSE
  "libhetsim_cache.a"
)
