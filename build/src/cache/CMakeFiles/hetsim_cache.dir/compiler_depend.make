# Empty compiler generated dependencies file for hetsim_cache.
# This may be replaced when dependencies are built.
