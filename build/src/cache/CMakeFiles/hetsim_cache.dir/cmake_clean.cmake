file(REMOVE_RECURSE
  "CMakeFiles/hetsim_cache.dir/Cache.cpp.o"
  "CMakeFiles/hetsim_cache.dir/Cache.cpp.o.d"
  "CMakeFiles/hetsim_cache.dir/Directory.cpp.o"
  "CMakeFiles/hetsim_cache.dir/Directory.cpp.o.d"
  "CMakeFiles/hetsim_cache.dir/Mshr.cpp.o"
  "CMakeFiles/hetsim_cache.dir/Mshr.cpp.o.d"
  "CMakeFiles/hetsim_cache.dir/Scratchpad.cpp.o"
  "CMakeFiles/hetsim_cache.dir/Scratchpad.cpp.o.d"
  "CMakeFiles/hetsim_cache.dir/StreamPrefetcher.cpp.o"
  "CMakeFiles/hetsim_cache.dir/StreamPrefetcher.cpp.o.d"
  "libhetsim_cache.a"
  "libhetsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
