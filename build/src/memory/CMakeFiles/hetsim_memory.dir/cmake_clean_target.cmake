file(REMOVE_RECURSE
  "libhetsim_memory.a"
)
