# Empty compiler generated dependencies file for hetsim_memory.
# This may be replaced when dependencies are built.
