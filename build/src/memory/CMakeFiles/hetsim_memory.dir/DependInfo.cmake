
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/AddressSpaceModel.cpp" "src/memory/CMakeFiles/hetsim_memory.dir/AddressSpaceModel.cpp.o" "gcc" "src/memory/CMakeFiles/hetsim_memory.dir/AddressSpaceModel.cpp.o.d"
  "/root/repo/src/memory/ConsistencyChecker.cpp" "src/memory/CMakeFiles/hetsim_memory.dir/ConsistencyChecker.cpp.o" "gcc" "src/memory/CMakeFiles/hetsim_memory.dir/ConsistencyChecker.cpp.o.d"
  "/root/repo/src/memory/FirstTouchTracker.cpp" "src/memory/CMakeFiles/hetsim_memory.dir/FirstTouchTracker.cpp.o" "gcc" "src/memory/CMakeFiles/hetsim_memory.dir/FirstTouchTracker.cpp.o.d"
  "/root/repo/src/memory/HybridCoherence.cpp" "src/memory/CMakeFiles/hetsim_memory.dir/HybridCoherence.cpp.o" "gcc" "src/memory/CMakeFiles/hetsim_memory.dir/HybridCoherence.cpp.o.d"
  "/root/repo/src/memory/MemorySystem.cpp" "src/memory/CMakeFiles/hetsim_memory.dir/MemorySystem.cpp.o" "gcc" "src/memory/CMakeFiles/hetsim_memory.dir/MemorySystem.cpp.o.d"
  "/root/repo/src/memory/Ownership.cpp" "src/memory/CMakeFiles/hetsim_memory.dir/Ownership.cpp.o" "gcc" "src/memory/CMakeFiles/hetsim_memory.dir/Ownership.cpp.o.d"
  "/root/repo/src/memory/PageTable.cpp" "src/memory/CMakeFiles/hetsim_memory.dir/PageTable.cpp.o" "gcc" "src/memory/CMakeFiles/hetsim_memory.dir/PageTable.cpp.o.d"
  "/root/repo/src/memory/SoftwareCoherence.cpp" "src/memory/CMakeFiles/hetsim_memory.dir/SoftwareCoherence.cpp.o" "gcc" "src/memory/CMakeFiles/hetsim_memory.dir/SoftwareCoherence.cpp.o.d"
  "/root/repo/src/memory/Tlb.cpp" "src/memory/CMakeFiles/hetsim_memory.dir/Tlb.cpp.o" "gcc" "src/memory/CMakeFiles/hetsim_memory.dir/Tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hetsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hetsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hetsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hetsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/hetsim_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
