file(REMOVE_RECURSE
  "CMakeFiles/hetsim_memory.dir/AddressSpaceModel.cpp.o"
  "CMakeFiles/hetsim_memory.dir/AddressSpaceModel.cpp.o.d"
  "CMakeFiles/hetsim_memory.dir/ConsistencyChecker.cpp.o"
  "CMakeFiles/hetsim_memory.dir/ConsistencyChecker.cpp.o.d"
  "CMakeFiles/hetsim_memory.dir/FirstTouchTracker.cpp.o"
  "CMakeFiles/hetsim_memory.dir/FirstTouchTracker.cpp.o.d"
  "CMakeFiles/hetsim_memory.dir/HybridCoherence.cpp.o"
  "CMakeFiles/hetsim_memory.dir/HybridCoherence.cpp.o.d"
  "CMakeFiles/hetsim_memory.dir/MemorySystem.cpp.o"
  "CMakeFiles/hetsim_memory.dir/MemorySystem.cpp.o.d"
  "CMakeFiles/hetsim_memory.dir/Ownership.cpp.o"
  "CMakeFiles/hetsim_memory.dir/Ownership.cpp.o.d"
  "CMakeFiles/hetsim_memory.dir/PageTable.cpp.o"
  "CMakeFiles/hetsim_memory.dir/PageTable.cpp.o.d"
  "CMakeFiles/hetsim_memory.dir/SoftwareCoherence.cpp.o"
  "CMakeFiles/hetsim_memory.dir/SoftwareCoherence.cpp.o.d"
  "CMakeFiles/hetsim_memory.dir/Tlb.cpp.o"
  "CMakeFiles/hetsim_memory.dir/Tlb.cpp.o.d"
  "libhetsim_memory.a"
  "libhetsim_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
