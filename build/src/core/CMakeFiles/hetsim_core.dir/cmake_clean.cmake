file(REMOVE_RECURSE
  "CMakeFiles/hetsim_core.dir/ConsistencyValidation.cpp.o"
  "CMakeFiles/hetsim_core.dir/ConsistencyValidation.cpp.o.d"
  "CMakeFiles/hetsim_core.dir/DesignSpace.cpp.o"
  "CMakeFiles/hetsim_core.dir/DesignSpace.cpp.o.d"
  "CMakeFiles/hetsim_core.dir/Experiments.cpp.o"
  "CMakeFiles/hetsim_core.dir/Experiments.cpp.o.d"
  "CMakeFiles/hetsim_core.dir/ExtraWorkloads.cpp.o"
  "CMakeFiles/hetsim_core.dir/ExtraWorkloads.cpp.o.d"
  "CMakeFiles/hetsim_core.dir/HeteroSimulator.cpp.o"
  "CMakeFiles/hetsim_core.dir/HeteroSimulator.cpp.o.d"
  "CMakeFiles/hetsim_core.dir/KernelModel.cpp.o"
  "CMakeFiles/hetsim_core.dir/KernelModel.cpp.o.d"
  "CMakeFiles/hetsim_core.dir/LocalityValidation.cpp.o"
  "CMakeFiles/hetsim_core.dir/LocalityValidation.cpp.o.d"
  "CMakeFiles/hetsim_core.dir/Lowering.cpp.o"
  "CMakeFiles/hetsim_core.dir/Lowering.cpp.o.d"
  "CMakeFiles/hetsim_core.dir/SourceLineModel.cpp.o"
  "CMakeFiles/hetsim_core.dir/SourceLineModel.cpp.o.d"
  "CMakeFiles/hetsim_core.dir/SystemConfig.cpp.o"
  "CMakeFiles/hetsim_core.dir/SystemConfig.cpp.o.d"
  "CMakeFiles/hetsim_core.dir/SystemDescriptor.cpp.o"
  "CMakeFiles/hetsim_core.dir/SystemDescriptor.cpp.o.d"
  "libhetsim_core.a"
  "libhetsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
