
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ConsistencyValidation.cpp" "src/core/CMakeFiles/hetsim_core.dir/ConsistencyValidation.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/ConsistencyValidation.cpp.o.d"
  "/root/repo/src/core/DesignSpace.cpp" "src/core/CMakeFiles/hetsim_core.dir/DesignSpace.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/DesignSpace.cpp.o.d"
  "/root/repo/src/core/Experiments.cpp" "src/core/CMakeFiles/hetsim_core.dir/Experiments.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/Experiments.cpp.o.d"
  "/root/repo/src/core/ExtraWorkloads.cpp" "src/core/CMakeFiles/hetsim_core.dir/ExtraWorkloads.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/ExtraWorkloads.cpp.o.d"
  "/root/repo/src/core/HeteroSimulator.cpp" "src/core/CMakeFiles/hetsim_core.dir/HeteroSimulator.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/HeteroSimulator.cpp.o.d"
  "/root/repo/src/core/KernelModel.cpp" "src/core/CMakeFiles/hetsim_core.dir/KernelModel.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/KernelModel.cpp.o.d"
  "/root/repo/src/core/LocalityValidation.cpp" "src/core/CMakeFiles/hetsim_core.dir/LocalityValidation.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/LocalityValidation.cpp.o.d"
  "/root/repo/src/core/Lowering.cpp" "src/core/CMakeFiles/hetsim_core.dir/Lowering.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/Lowering.cpp.o.d"
  "/root/repo/src/core/SourceLineModel.cpp" "src/core/CMakeFiles/hetsim_core.dir/SourceLineModel.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/SourceLineModel.cpp.o.d"
  "/root/repo/src/core/SystemConfig.cpp" "src/core/CMakeFiles/hetsim_core.dir/SystemConfig.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/SystemConfig.cpp.o.d"
  "/root/repo/src/core/SystemDescriptor.cpp" "src/core/CMakeFiles/hetsim_core.dir/SystemDescriptor.cpp.o" "gcc" "src/core/CMakeFiles/hetsim_core.dir/SystemDescriptor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hetsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hetsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hetsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hetsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/hetsim_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/hetsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hetsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/hetsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hetsim_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
