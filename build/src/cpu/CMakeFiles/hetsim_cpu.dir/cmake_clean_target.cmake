file(REMOVE_RECURSE
  "libhetsim_cpu.a"
)
