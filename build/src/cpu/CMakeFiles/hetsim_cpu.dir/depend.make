# Empty dependencies file for hetsim_cpu.
# This may be replaced when dependencies are built.
