file(REMOVE_RECURSE
  "CMakeFiles/hetsim_cpu.dir/BranchPredictor.cpp.o"
  "CMakeFiles/hetsim_cpu.dir/BranchPredictor.cpp.o.d"
  "CMakeFiles/hetsim_cpu.dir/CpuCore.cpp.o"
  "CMakeFiles/hetsim_cpu.dir/CpuCore.cpp.o.d"
  "libhetsim_cpu.a"
  "libhetsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
