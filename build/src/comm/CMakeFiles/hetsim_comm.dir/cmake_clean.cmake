file(REMOVE_RECURSE
  "CMakeFiles/hetsim_comm.dir/CommParams.cpp.o"
  "CMakeFiles/hetsim_comm.dir/CommParams.cpp.o.d"
  "CMakeFiles/hetsim_comm.dir/DmaEngine.cpp.o"
  "CMakeFiles/hetsim_comm.dir/DmaEngine.cpp.o.d"
  "CMakeFiles/hetsim_comm.dir/MemControllerLink.cpp.o"
  "CMakeFiles/hetsim_comm.dir/MemControllerLink.cpp.o.d"
  "CMakeFiles/hetsim_comm.dir/PciAperture.cpp.o"
  "CMakeFiles/hetsim_comm.dir/PciAperture.cpp.o.d"
  "CMakeFiles/hetsim_comm.dir/PciExpressLink.cpp.o"
  "CMakeFiles/hetsim_comm.dir/PciExpressLink.cpp.o.d"
  "libhetsim_comm.a"
  "libhetsim_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
