file(REMOVE_RECURSE
  "libhetsim_comm.a"
)
