# Empty compiler generated dependencies file for hetsim_comm.
# This may be replaced when dependencies are built.
