
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/CommParams.cpp" "src/comm/CMakeFiles/hetsim_comm.dir/CommParams.cpp.o" "gcc" "src/comm/CMakeFiles/hetsim_comm.dir/CommParams.cpp.o.d"
  "/root/repo/src/comm/DmaEngine.cpp" "src/comm/CMakeFiles/hetsim_comm.dir/DmaEngine.cpp.o" "gcc" "src/comm/CMakeFiles/hetsim_comm.dir/DmaEngine.cpp.o.d"
  "/root/repo/src/comm/MemControllerLink.cpp" "src/comm/CMakeFiles/hetsim_comm.dir/MemControllerLink.cpp.o" "gcc" "src/comm/CMakeFiles/hetsim_comm.dir/MemControllerLink.cpp.o.d"
  "/root/repo/src/comm/PciAperture.cpp" "src/comm/CMakeFiles/hetsim_comm.dir/PciAperture.cpp.o" "gcc" "src/comm/CMakeFiles/hetsim_comm.dir/PciAperture.cpp.o.d"
  "/root/repo/src/comm/PciExpressLink.cpp" "src/comm/CMakeFiles/hetsim_comm.dir/PciExpressLink.cpp.o" "gcc" "src/comm/CMakeFiles/hetsim_comm.dir/PciExpressLink.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hetsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hetsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hetsim_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
