file(REMOVE_RECURSE
  "libhetsim_dram.a"
)
