file(REMOVE_RECURSE
  "CMakeFiles/hetsim_dram.dir/Dram.cpp.o"
  "CMakeFiles/hetsim_dram.dir/Dram.cpp.o.d"
  "libhetsim_dram.a"
  "libhetsim_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
