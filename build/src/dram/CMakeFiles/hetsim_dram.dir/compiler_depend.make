# Empty compiler generated dependencies file for hetsim_dram.
# This may be replaced when dependencies are built.
