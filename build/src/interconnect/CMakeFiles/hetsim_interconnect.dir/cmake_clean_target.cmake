file(REMOVE_RECURSE
  "libhetsim_interconnect.a"
)
