# Empty dependencies file for hetsim_interconnect.
# This may be replaced when dependencies are built.
