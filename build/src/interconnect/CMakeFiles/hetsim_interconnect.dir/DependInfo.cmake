
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/MeshNoc.cpp" "src/interconnect/CMakeFiles/hetsim_interconnect.dir/MeshNoc.cpp.o" "gcc" "src/interconnect/CMakeFiles/hetsim_interconnect.dir/MeshNoc.cpp.o.d"
  "/root/repo/src/interconnect/RingBus.cpp" "src/interconnect/CMakeFiles/hetsim_interconnect.dir/RingBus.cpp.o" "gcc" "src/interconnect/CMakeFiles/hetsim_interconnect.dir/RingBus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hetsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
