file(REMOVE_RECURSE
  "CMakeFiles/hetsim_interconnect.dir/MeshNoc.cpp.o"
  "CMakeFiles/hetsim_interconnect.dir/MeshNoc.cpp.o.d"
  "CMakeFiles/hetsim_interconnect.dir/RingBus.cpp.o"
  "CMakeFiles/hetsim_interconnect.dir/RingBus.cpp.o.d"
  "libhetsim_interconnect.a"
  "libhetsim_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
