file(REMOVE_RECURSE
  "CMakeFiles/hetsim_common.dir/AsciiChart.cpp.o"
  "CMakeFiles/hetsim_common.dir/AsciiChart.cpp.o.d"
  "CMakeFiles/hetsim_common.dir/Config.cpp.o"
  "CMakeFiles/hetsim_common.dir/Config.cpp.o.d"
  "CMakeFiles/hetsim_common.dir/Error.cpp.o"
  "CMakeFiles/hetsim_common.dir/Error.cpp.o.d"
  "CMakeFiles/hetsim_common.dir/Log.cpp.o"
  "CMakeFiles/hetsim_common.dir/Log.cpp.o.d"
  "CMakeFiles/hetsim_common.dir/Stats.cpp.o"
  "CMakeFiles/hetsim_common.dir/Stats.cpp.o.d"
  "CMakeFiles/hetsim_common.dir/StringUtil.cpp.o"
  "CMakeFiles/hetsim_common.dir/StringUtil.cpp.o.d"
  "CMakeFiles/hetsim_common.dir/TextTable.cpp.o"
  "CMakeFiles/hetsim_common.dir/TextTable.cpp.o.d"
  "libhetsim_common.a"
  "libhetsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
