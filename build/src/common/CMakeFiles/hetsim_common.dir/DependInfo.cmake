
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/AsciiChart.cpp" "src/common/CMakeFiles/hetsim_common.dir/AsciiChart.cpp.o" "gcc" "src/common/CMakeFiles/hetsim_common.dir/AsciiChart.cpp.o.d"
  "/root/repo/src/common/Config.cpp" "src/common/CMakeFiles/hetsim_common.dir/Config.cpp.o" "gcc" "src/common/CMakeFiles/hetsim_common.dir/Config.cpp.o.d"
  "/root/repo/src/common/Error.cpp" "src/common/CMakeFiles/hetsim_common.dir/Error.cpp.o" "gcc" "src/common/CMakeFiles/hetsim_common.dir/Error.cpp.o.d"
  "/root/repo/src/common/Log.cpp" "src/common/CMakeFiles/hetsim_common.dir/Log.cpp.o" "gcc" "src/common/CMakeFiles/hetsim_common.dir/Log.cpp.o.d"
  "/root/repo/src/common/Stats.cpp" "src/common/CMakeFiles/hetsim_common.dir/Stats.cpp.o" "gcc" "src/common/CMakeFiles/hetsim_common.dir/Stats.cpp.o.d"
  "/root/repo/src/common/StringUtil.cpp" "src/common/CMakeFiles/hetsim_common.dir/StringUtil.cpp.o" "gcc" "src/common/CMakeFiles/hetsim_common.dir/StringUtil.cpp.o.d"
  "/root/repo/src/common/TextTable.cpp" "src/common/CMakeFiles/hetsim_common.dir/TextTable.cpp.o" "gcc" "src/common/CMakeFiles/hetsim_common.dir/TextTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
