
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/DataLayout.cpp" "src/trace/CMakeFiles/hetsim_trace.dir/DataLayout.cpp.o" "gcc" "src/trace/CMakeFiles/hetsim_trace.dir/DataLayout.cpp.o.d"
  "/root/repo/src/trace/Kernel.cpp" "src/trace/CMakeFiles/hetsim_trace.dir/Kernel.cpp.o" "gcc" "src/trace/CMakeFiles/hetsim_trace.dir/Kernel.cpp.o.d"
  "/root/repo/src/trace/KernelGenerators.cpp" "src/trace/CMakeFiles/hetsim_trace.dir/KernelGenerators.cpp.o" "gcc" "src/trace/CMakeFiles/hetsim_trace.dir/KernelGenerators.cpp.o.d"
  "/root/repo/src/trace/KernelTraceGenerator.cpp" "src/trace/CMakeFiles/hetsim_trace.dir/KernelTraceGenerator.cpp.o" "gcc" "src/trace/CMakeFiles/hetsim_trace.dir/KernelTraceGenerator.cpp.o.d"
  "/root/repo/src/trace/Opcode.cpp" "src/trace/CMakeFiles/hetsim_trace.dir/Opcode.cpp.o" "gcc" "src/trace/CMakeFiles/hetsim_trace.dir/Opcode.cpp.o.d"
  "/root/repo/src/trace/TraceBuffer.cpp" "src/trace/CMakeFiles/hetsim_trace.dir/TraceBuffer.cpp.o" "gcc" "src/trace/CMakeFiles/hetsim_trace.dir/TraceBuffer.cpp.o.d"
  "/root/repo/src/trace/TraceIO.cpp" "src/trace/CMakeFiles/hetsim_trace.dir/TraceIO.cpp.o" "gcc" "src/trace/CMakeFiles/hetsim_trace.dir/TraceIO.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hetsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
