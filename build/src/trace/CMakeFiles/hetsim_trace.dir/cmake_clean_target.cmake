file(REMOVE_RECURSE
  "libhetsim_trace.a"
)
