# Empty compiler generated dependencies file for hetsim_trace.
# This may be replaced when dependencies are built.
