file(REMOVE_RECURSE
  "CMakeFiles/hetsim_trace.dir/DataLayout.cpp.o"
  "CMakeFiles/hetsim_trace.dir/DataLayout.cpp.o.d"
  "CMakeFiles/hetsim_trace.dir/Kernel.cpp.o"
  "CMakeFiles/hetsim_trace.dir/Kernel.cpp.o.d"
  "CMakeFiles/hetsim_trace.dir/KernelGenerators.cpp.o"
  "CMakeFiles/hetsim_trace.dir/KernelGenerators.cpp.o.d"
  "CMakeFiles/hetsim_trace.dir/KernelTraceGenerator.cpp.o"
  "CMakeFiles/hetsim_trace.dir/KernelTraceGenerator.cpp.o.d"
  "CMakeFiles/hetsim_trace.dir/Opcode.cpp.o"
  "CMakeFiles/hetsim_trace.dir/Opcode.cpp.o.d"
  "CMakeFiles/hetsim_trace.dir/TraceBuffer.cpp.o"
  "CMakeFiles/hetsim_trace.dir/TraceBuffer.cpp.o.d"
  "CMakeFiles/hetsim_trace.dir/TraceIO.cpp.o"
  "CMakeFiles/hetsim_trace.dir/TraceIO.cpp.o.d"
  "libhetsim_trace.a"
  "libhetsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
