# Empty compiler generated dependencies file for hetsim_gpu.
# This may be replaced when dependencies are built.
