file(REMOVE_RECURSE
  "libhetsim_gpu.a"
)
