file(REMOVE_RECURSE
  "CMakeFiles/hetsim_gpu.dir/Coalescer.cpp.o"
  "CMakeFiles/hetsim_gpu.dir/Coalescer.cpp.o.d"
  "CMakeFiles/hetsim_gpu.dir/GpuCore.cpp.o"
  "CMakeFiles/hetsim_gpu.dir/GpuCore.cpp.o.d"
  "libhetsim_gpu.a"
  "libhetsim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
