file(REMOVE_RECURSE
  "CMakeFiles/hetsim.dir/hetsim_cli.cpp.o"
  "CMakeFiles/hetsim.dir/hetsim_cli.cpp.o.d"
  "hetsim"
  "hetsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
