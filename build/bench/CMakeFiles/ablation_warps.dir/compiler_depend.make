# Empty compiler generated dependencies file for ablation_warps.
# This may be replaced when dependencies are built.
