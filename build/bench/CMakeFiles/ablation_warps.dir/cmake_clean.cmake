file(REMOVE_RECURSE
  "CMakeFiles/ablation_warps.dir/ablation_warps.cpp.o"
  "CMakeFiles/ablation_warps.dir/ablation_warps.cpp.o.d"
  "ablation_warps"
  "ablation_warps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
