file(REMOVE_RECURSE
  "CMakeFiles/extra_workloads.dir/extra_workloads.cpp.o"
  "CMakeFiles/extra_workloads.dir/extra_workloads.cpp.o.d"
  "extra_workloads"
  "extra_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
