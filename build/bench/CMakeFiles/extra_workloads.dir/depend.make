# Empty dependencies file for extra_workloads.
# This may be replaced when dependencies are built.
