# Empty compiler generated dependencies file for extra_workloads.
# This may be replaced when dependencies are built.
