file(REMOVE_RECURSE
  "CMakeFiles/ablation_shared_llc.dir/ablation_shared_llc.cpp.o"
  "CMakeFiles/ablation_shared_llc.dir/ablation_shared_llc.cpp.o.d"
  "ablation_shared_llc"
  "ablation_shared_llc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shared_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
