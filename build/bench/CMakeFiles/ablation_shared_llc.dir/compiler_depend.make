# Empty compiler generated dependencies file for ablation_shared_llc.
# This may be replaced when dependencies are built.
