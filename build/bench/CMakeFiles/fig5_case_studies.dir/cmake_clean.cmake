file(REMOVE_RECURSE
  "CMakeFiles/fig5_case_studies.dir/fig5_case_studies.cpp.o"
  "CMakeFiles/fig5_case_studies.dir/fig5_case_studies.cpp.o.d"
  "fig5_case_studies"
  "fig5_case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
