# Empty compiler generated dependencies file for fig5_case_studies.
# This may be replaced when dependencies are built.
