# Empty dependencies file for table4_comm_params.
# This may be replaced when dependencies are built.
