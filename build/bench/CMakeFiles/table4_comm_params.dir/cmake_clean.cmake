file(REMOVE_RECURSE
  "CMakeFiles/table4_comm_params.dir/table4_comm_params.cpp.o"
  "CMakeFiles/table4_comm_params.dir/table4_comm_params.cpp.o.d"
  "table4_comm_params"
  "table4_comm_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_comm_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
