file(REMOVE_RECURSE
  "CMakeFiles/ablation_pagefault.dir/ablation_pagefault.cpp.o"
  "CMakeFiles/ablation_pagefault.dir/ablation_pagefault.cpp.o.d"
  "ablation_pagefault"
  "ablation_pagefault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pagefault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
