# Empty compiler generated dependencies file for ablation_pagefault.
# This may be replaced when dependencies are built.
