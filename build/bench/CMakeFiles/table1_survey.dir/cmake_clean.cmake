file(REMOVE_RECURSE
  "CMakeFiles/table1_survey.dir/table1_survey.cpp.o"
  "CMakeFiles/table1_survey.dir/table1_survey.cpp.o.d"
  "table1_survey"
  "table1_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
