# Empty compiler generated dependencies file for table1_survey.
# This may be replaced when dependencies are built.
