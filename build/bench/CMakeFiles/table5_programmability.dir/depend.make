# Empty dependencies file for table5_programmability.
# This may be replaced when dependencies are built.
