file(REMOVE_RECURSE
  "CMakeFiles/table5_programmability.dir/table5_programmability.cpp.o"
  "CMakeFiles/table5_programmability.dir/table5_programmability.cpp.o.d"
  "table5_programmability"
  "table5_programmability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_programmability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
