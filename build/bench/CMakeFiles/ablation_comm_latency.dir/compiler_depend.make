# Empty compiler generated dependencies file for ablation_comm_latency.
# This may be replaced when dependencies are built.
