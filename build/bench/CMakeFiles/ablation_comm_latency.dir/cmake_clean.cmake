file(REMOVE_RECURSE
  "CMakeFiles/ablation_comm_latency.dir/ablation_comm_latency.cpp.o"
  "CMakeFiles/ablation_comm_latency.dir/ablation_comm_latency.cpp.o.d"
  "ablation_comm_latency"
  "ablation_comm_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_comm_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
