# Empty dependencies file for fig6_comm_overhead.
# This may be replaced when dependencies are built.
