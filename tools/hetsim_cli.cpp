//===- tools/hetsim_cli.cpp - Command-line front end ----------------------===//
///
/// \file
/// The `hetsim` command-line tool: run any (system, kernel) pair with
/// config overrides, print the paper's tables, or sweep a parameter —
/// without writing C++.
///
///   hetsim list
///   hetsim run --system LRB --kernel reduction [key=value ...]
///   hetsim table 1|2|3|4|5
///   hetsim sweep --system CPU+GPU --kernel "merge sort"
///       --key comm.api_pci_base --values 0,10000,33250,100000
///
//===----------------------------------------------------------------------===//

#include "common/StringUtil.h"
#include "core/Experiments.h"
#include "core/ExtraWorkloads.h"
#include "core/SweepRunner.h"
#include "energy/EnergyModel.h"
#include "obs/Metrics.h"
#include "obs/Phase.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace hetsim;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hetsim list\n"
      "  hetsim run --system <name> --kernel <name> [--config file]\n"
      "         [--stats] [--metrics out.json] [key=value ...]\n"
      "  hetsim compare --kernel <name> [key=value ...]\n"
      "  hetsim extra --system <name> --workload <name> [--elements N]\n"
      "  hetsim table <1|2|3|4|5>\n"
      "  hetsim sweep --system <name> --kernel <name> --key <config-key>\n"
      "         --values v1,v2,... [--resume] [--store <dir>] [key=value ...]\n"
      "systems: CPU+GPU LRB GMAC Fusion IDEAL-HETERO UNI PAS DIS ADSM\n"
      "--resume serves already-completed sweep points from the on-disk\n"
      "result store (default out/result-store, or --store / "
      "$HETSIM_RESULT_STORE)\n");
  return 2;
}

bool systemByName(const std::string &Name, SystemConfig &Out,
                  const ConfigStore &Overrides) {
  for (CaseStudy Study : allCaseStudies()) {
    if (Name == caseStudyName(Study)) {
      Out = SystemConfig::forCaseStudy(Study, Overrides);
      return true;
    }
  }
  static const AddressSpaceKind Kinds[] = {
      AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
      AddressSpaceKind::Disjoint, AddressSpaceKind::Adsm};
  for (AddressSpaceKind Kind : Kinds) {
    if (Name == addressSpaceShortName(Kind)) {
      Out = SystemConfig::forAddressSpaceStudy(Kind, Overrides);
      return true;
    }
  }
  return false;
}

void printRun(const SystemConfig &Config, KernelId Kernel, bool DumpStats,
              const std::string &MetricsPath) {
  HeteroSimulator Simulator(Config);
  RunResult Result = Simulator.run(Kernel);
  const TimeBreakdown &T = Result.Time;
  std::printf("%s / %s\n", Config.Name.c_str(), kernelName(Kernel));
  std::printf("  total          %10.2f us\n", T.totalNs() / 1e3);
  std::printf("  sequential     %10.2f us\n", T.SequentialNs / 1e3);
  std::printf("  parallel       %10.2f us\n", T.ParallelNs / 1e3);
  std::printf("  communication  %10.2f us (%.1f%%)\n",
              T.CommunicationNs / 1e3, 100.0 * T.commFraction());
  std::printf("  phases:");
  for (unsigned P = 0; P != NumRunPhases; ++P)
    if (Result.Phases.Ns[P] > 0)
      std::printf(" %s=%.2fus", runPhaseName(RunPhase(P)),
                  Result.Phases.Ns[P] / 1e3);
  std::printf("\n");
  std::printf("  cpu insts %llu (IPC %.2f), gpu warp insts %llu\n",
              (unsigned long long)Result.CpuTotal.Insts,
              Result.CpuTotal.ipc(),
              (unsigned long long)Result.GpuTotal.Insts);
  CpiStack Stack = computeCpiStack(Result.CpuTotal, Config.Cpu);
  std::printf("  cpu CPI %.2f = base %.2f + branch %.2f + fetch %.2f + "
              "mem/dep %.2f\n",
              Stack.totalCpi(), Stack.BaseCpi, Stack.BranchCpi,
              Stack.FetchCpi, Stack.MemDepCpi);
  std::printf("  transferred %llu B in %llu copies; page faults %llu; "
              "ownership actions %llu\n",
              (unsigned long long)Result.TransferredBytes,
              (unsigned long long)Result.TransferCount,
              (unsigned long long)Result.PageFaults,
              (unsigned long long)Result.OwnershipActions);
  std::printf("  comm source lines: %u\n", Result.CommSourceLines);

  bool Pci = Config.Connection == ConnectionKind::PciExpress;
  EnergyReport Energy = computeEnergy(EnergyParams(), Simulator.memory(),
                                      Result, Pci);
  std::printf("  energy: %s\n", Energy.renderSummary().c_str());

  if (DumpStats) {
    MemorySystem &Mem = Simulator.memory();
    std::printf("\nmemory-system counters:\n%s",
                Mem.stats().renderCounters().c_str());
    std::printf("cpu.l1d: acc=%llu hit=%.3f  cpu.l2: acc=%llu hit=%.3f  "
                "gpu.l1: acc=%llu hit=%.3f  l3: acc=%llu hit=%.3f\n",
                (unsigned long long)Mem.cpuL1().stats().Accesses,
                Mem.cpuL1().stats().hitRate(),
                (unsigned long long)Mem.cpuL2().stats().Accesses,
                Mem.cpuL2().stats().hitRate(),
                (unsigned long long)Mem.gpuL1().stats().Accesses,
                Mem.gpuL1().stats().hitRate(),
                (unsigned long long)Mem.l3().stats().Accesses,
                Mem.l3().stats().hitRate());
    std::printf("dram: reads=%llu writes=%llu row-hit=%.3f  noc(%s): "
                "msgs=%llu hops=%llu\n",
                (unsigned long long)Mem.cpuDram().stats().Reads,
                (unsigned long long)Mem.cpuDram().stats().Writes,
                Mem.cpuDram().stats().rowHitRate(), Mem.noc().name(),
                (unsigned long long)Mem.noc().stats().Messages,
                (unsigned long long)Mem.noc().stats().TotalHops);
    std::printf("tlb: cpu-miss=%llu gpu-miss=%llu\n",
                (unsigned long long)Mem.tlb(PuKind::Cpu).stats().Misses,
                (unsigned long long)Mem.tlb(PuKind::Gpu).stats().Misses);
  }

  if (!MetricsPath.empty()) {
    MetricsSnapshot M = Simulator.collectMetrics(Result);
    ConservationReport Audit = checkConservation(Simulator.memory());
    if (!Audit.Ok)
      std::fprintf(stderr, "warning: %s\n", Audit.summary().c_str());
    if (writeMetricsJson(MetricsPath, M))
      std::printf("  metrics: %zu values -> %s (conservation %s)\n",
                  M.size(), MetricsPath.c_str(), Audit.Ok ? "ok" : "VIOLATED");
    else
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   MetricsPath.c_str());
  }
}

int cmdList() {
  std::printf("kernels:\n");
  for (KernelId Kernel : allKernels())
    std::printf("  %-12s %s\n", kernelName(Kernel),
                kernelCharacteristics(Kernel).Pattern);
  std::printf("case-study systems:\n");
  for (CaseStudy Study : allCaseStudies())
    std::printf("  %s\n", caseStudyName(Study));
  std::printf("address-space studies (ideal comm): UNI PAS DIS ADSM\n");
  std::printf("extra workloads:");
  for (ExtraWorkloadId Id : allExtraWorkloads())
    std::printf(" \"%s\"", extraWorkloadName(Id));
  std::printf("\n");
  return 0;
}

int cmdTable(const std::string &Which) {
  if (Which == "1") {
    std::printf("%s", renderTable1().render().c_str());
    return 0;
  }
  if (Which == "2") {
    std::printf("%s",
                renderTable2(SystemConfig::forCaseStudy(CaseStudy::IdealHetero))
                    .render()
                    .c_str());
    return 0;
  }
  if (Which == "3") {
    std::printf("%s", renderTable3().render().c_str());
    return 0;
  }
  if (Which == "4") {
    std::printf("%s", renderTable4(CommParams()).render().c_str());
    return 0;
  }
  if (Which == "5") {
    std::printf("%s", renderTable5().render().c_str());
    return 0;
  }
  return usage();
}

struct ParsedArgs {
  std::string System;
  std::string Kernel;
  std::string Workload;
  uint64_t Elements = 65536;
  std::string SweepKey;
  std::vector<std::string> SweepValues;
  ConfigStore Overrides;
  bool DumpStats = false;
  std::string MetricsPath;
  bool Resume = false;
  std::string StoreDir;
  bool Ok = true;
};

ParsedArgs parseArgs(int Argc, char **Argv, int Start) {
  ParsedArgs Args;
  for (int I = Start; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto TakeValue = [&](std::string &Out) {
      if (I + 1 >= Argc) {
        Args.Ok = false;
        return;
      }
      Out = Argv[++I];
    };
    if (Arg == "--system") {
      TakeValue(Args.System);
    } else if (Arg == "--config") {
      std::string Path;
      TakeValue(Path);
      if (!Path.empty() && !Args.Overrides.loadFile(Path)) {
        std::fprintf(stderr, "error: cannot read config file '%s'\n",
                     Path.c_str());
        Args.Ok = false;
      }
    } else if (Arg == "--kernel") {
      TakeValue(Args.Kernel);
    } else if (Arg == "--workload") {
      TakeValue(Args.Workload);
    } else if (Arg == "--elements") {
      std::string Value;
      TakeValue(Value);
      Args.Elements = std::strtoull(Value.c_str(), nullptr, 0);
    } else if (Arg == "--stats") {
      Args.DumpStats = true;
    } else if (Arg == "--metrics") {
      TakeValue(Args.MetricsPath);
    } else if (Arg == "--resume") {
      Args.Resume = true;
    } else if (Arg == "--store") {
      TakeValue(Args.StoreDir);
    } else if (Arg == "--key") {
      TakeValue(Args.SweepKey);
    } else if (Arg == "--values") {
      std::string Joined;
      TakeValue(Joined);
      Args.SweepValues = splitString(Joined, ',');
    } else if (Arg.find('=') != std::string::npos) {
      if (!Args.Overrides.parseAssignment(Arg))
        Args.Ok = false;
    } else {
      Args.Ok = false;
    }
  }
  return Args;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Command = Argv[1];

  if (Command == "list")
    return cmdList();
  if (Command == "table")
    return Argc >= 3 ? cmdTable(Argv[2]) : usage();

  if (Command == "extra") {
    ParsedArgs Args = parseArgs(Argc, Argv, 2);
    if (!Args.Ok || Args.System.empty() || Args.Workload.empty() ||
        Args.Elements < 64)
      return usage();
    SystemConfig Config;
    if (!systemByName(Args.System, Config, Args.Overrides)) {
      std::fprintf(stderr, "error: unknown system '%s'\n",
                   Args.System.c_str());
      return 2;
    }
    for (ExtraWorkloadId Id : allExtraWorkloads()) {
      if (Args.Workload != extraWorkloadName(Id))
        continue;
      HeteroSimulator Simulator(Config);
      LoweredProgram Program =
          buildExtraWorkload(Id, Config, Args.Elements);
      RunResult R = Simulator.runLowered(Program);
      std::printf("%s / %s (%llu elements)\n", Config.Name.c_str(),
                  extraWorkloadName(Id),
                  (unsigned long long)Args.Elements);
      std::printf("  total %0.2f us (par %0.2f, comm %0.2f, seq %0.2f); "
                  "moved %llu bytes\n",
                  R.Time.totalNs() / 1e3, R.Time.ParallelNs / 1e3,
                  R.Time.CommunicationNs / 1e3, R.Time.SequentialNs / 1e3,
                  (unsigned long long)R.TransferredBytes);
      return 0;
    }
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 Args.Workload.c_str());
    return 2;
  }

  if (Command == "compare") {
    ParsedArgs Args = parseArgs(Argc, Argv, 2);
    if (!Args.Ok || Args.Kernel.empty())
      return usage();
    KernelId Kernel;
    if (!kernelByName(Args.Kernel.c_str(), Kernel)) {
      std::fprintf(stderr, "error: unknown kernel '%s'\n",
                   Args.Kernel.c_str());
      return 2;
    }
    std::printf("%-14s %10s %10s %10s %10s %9s %6s\n", "system", "total_us",
                "seq_us", "par_us", "comm_us", "comm_frac", "lines");
    for (CaseStudy Study : allCaseStudies()) {
      SystemConfig Config = SystemConfig::forCaseStudy(Study, Args.Overrides);
      HeteroSimulator Simulator(Config);
      RunResult R = Simulator.run(Kernel);
      std::printf("%-14s %10.1f %10.1f %10.1f %10.1f %8.1f%% %6u\n",
                  Config.Name.c_str(), R.Time.totalNs() / 1e3,
                  R.Time.SequentialNs / 1e3, R.Time.ParallelNs / 1e3,
                  R.Time.CommunicationNs / 1e3,
                  100.0 * R.Time.commFraction(), R.CommSourceLines);
    }
    return 0;
  }

  if (Command == "run" || Command == "sweep") {
    ParsedArgs Args = parseArgs(Argc, Argv, 2);
    if (!Args.Ok || Args.System.empty() || Args.Kernel.empty())
      return usage();
    KernelId Kernel;
    if (!kernelByName(Args.Kernel.c_str(), Kernel)) {
      std::fprintf(stderr, "error: unknown kernel '%s'\n",
                   Args.Kernel.c_str());
      return 2;
    }

    if (Command == "run") {
      SystemConfig Config;
      if (!systemByName(Args.System, Config, Args.Overrides)) {
        std::fprintf(stderr, "error: unknown system '%s'\n",
                     Args.System.c_str());
        return 2;
      }
      printRun(Config, Kernel, Args.DumpStats, Args.MetricsPath);
      return 0;
    }

    // sweep: fan the points over the sweep engine (HETSIM_JOBS workers;
    // results stay in submission order). Overrides are baked into each
    // point's config, so the point's own store stays empty.
    if (Args.SweepKey.empty() || Args.SweepValues.empty())
      return usage();
    std::vector<SweepPoint> Points;
    for (const std::string &Value : Args.SweepValues) {
      ConfigStore Overrides = Args.Overrides;
      Overrides.set(Args.SweepKey, Value);
      SystemConfig Config;
      if (!systemByName(Args.System, Config, Overrides)) {
        std::fprintf(stderr, "error: unknown system '%s'\n",
                     Args.System.c_str());
        return 2;
      }
      Points.emplace_back(std::move(Config), Kernel);
    }
    SweepRunner Runner;
    // --store names the result-store root explicitly; bare --resume
    // falls back to $HETSIM_RESULT_STORE, then out/result-store. Either
    // flag makes the sweep resumable: completed points are persisted,
    // and a re-run serves them without simulating.
    if (Args.Resume || !Args.StoreDir.empty()) {
      std::string Dir = Args.StoreDir;
      if (Dir.empty())
        if (const char *Env = std::getenv("HETSIM_RESULT_STORE"))
          Dir = Env;
      if (Dir.empty())
        Dir = "out/result-store";
      Runner.setResultStoreDir(Dir);
    }
    std::vector<RunResult> Results = Runner.run(Points);
    std::printf("%-16s %12s %12s %12s\n", Args.SweepKey.c_str(), "total_us",
                "comm_us", "comm_frac");
    for (size_t I = 0; I != Results.size(); ++I)
      std::printf("%-16s %12.2f %12.2f %11.1f%%\n",
                  Args.SweepValues[I].c_str(),
                  Results[I].Time.totalNs() / 1e3,
                  Results[I].Time.CommunicationNs / 1e3,
                  100.0 * Results[I].Time.commFraction());
    const SweepTelemetry &T = Runner.telemetry();
    if (T.StoreHits + T.StoreMisses != 0)
      std::fprintf(stderr,
                   "result store: %llu served, %llu simulated\n",
                   (unsigned long long)T.StoreHits,
                   (unsigned long long)T.StoreMisses);
    return 0;
  }

  return usage();
}
