//===- tools/hetsim_check.cpp - Paper-fidelity regression gate ------------===//
///
/// \file
/// The regression-check CLI over `refs/` (see check/Golden.h for the
/// directory layout):
///
///   hetsim_check diff [--out DIR] [--refs DIR] [--report FILE]
///       tolerance-aware comparison of every manifest artifact against
///       its golden; ranked per-metric report, nonzero exit on drift
///   hetsim_check fidelity [--out DIR] [--refs DIR]
///       paper-expected values and trends (loose bands) over the same
///       artifacts
///   hetsim_check bless [--out DIR] [--refs DIR]
///       copy the current artifacts over the goldens after an intended
///       change (commit the refs/ diff alongside the change)
///   hetsim_check determinism [--jobs N] [--kernel NAME]
///       run the design-space sweep serially and with N workers and
///       byte-compare the rendered table and sweep metrics document
///
/// Exit status: 0 clean, 1 violations, 2 usage or unreadable refs — so
/// `scripts/ci.sh` gate 5 can gate on it directly.
///
//===----------------------------------------------------------------------===//

#include "check/Golden.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/Json.h"

using namespace hetsim;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hetsim_check diff [--out DIR] [--refs DIR] "
               "[--report FILE]\n"
               "  hetsim_check fidelity [--out DIR] [--refs DIR]\n"
               "  hetsim_check bless [--out DIR] [--refs DIR]\n"
               "  hetsim_check determinism [--jobs N] [--kernel NAME]\n");
  return 2;
}

struct Options {
  CheckPaths Paths;
  std::string ReportPath;
  std::string Kernel;
  unsigned Jobs = 8;
  bool Ok = true;
};

Options parseOptions(int Argc, char **Argv, int Start) {
  Options Opts;
  for (int I = Start; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto TakeValue = [&](std::string &Out) {
      if (I + 1 >= Argc) {
        Opts.Ok = false;
        return;
      }
      Out = Argv[++I];
    };
    if (Arg == "--out") {
      TakeValue(Opts.Paths.OutDir);
    } else if (Arg == "--refs") {
      TakeValue(Opts.Paths.RefsDir);
    } else if (Arg == "--report") {
      TakeValue(Opts.ReportPath);
    } else if (Arg == "--kernel") {
      TakeValue(Opts.Kernel);
    } else if (Arg == "--jobs") {
      std::string Value;
      TakeValue(Value);
      char *End = nullptr;
      unsigned long Jobs = std::strtoul(Value.c_str(), &End, 10);
      if (End == Value.c_str() || *End != '\0' || Jobs == 0 || Jobs > 1024)
        Opts.Ok = false;
      else
        Opts.Jobs = static_cast<unsigned>(Jobs);
    } else {
      Opts.Ok = false;
    }
  }
  return Opts;
}

/// Prints (and optionally writes) a ranked report; returns the exit code.
int finishReport(const DiffReport &Report, const std::string &Title,
                 const std::string &ReportPath) {
  std::string Text = Report.render(Title);
  std::fputs(Text.c_str(), stdout);
  if (!ReportPath.empty() && !writeTextFile(ReportPath, Text))
    std::fprintf(stderr, "warning: cannot write report to %s\n",
                 ReportPath.c_str());
  return Report.ok() ? 0 : 1;
}

int cmdDiff(const Options &Opts) {
  std::string Error;
  std::vector<std::string> Names;
  if (!loadManifest(Opts.Paths.manifestPath(), Names, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  ToleranceSpec Spec;
  if (!ToleranceSpec::loadFile(Opts.Paths.tolerancesPath(), Spec, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  DiffReport Report = diffGoldens(Opts.Paths, Names, Spec);
  return finishReport(Report, "hetsim_check diff", Opts.ReportPath);
}

int cmdFidelity(const Options &Opts) {
  std::string Error;
  FidelitySet Set;
  if (!FidelitySet::loadFile(Opts.Paths.fidelityPath(), Set, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  DiffReport Report = fidelityGoldens(Opts.Paths, Set);
  return finishReport(Report, "hetsim_check fidelity", Opts.ReportPath);
}

int cmdBless(const Options &Opts) {
  std::string Error;
  std::vector<std::string> Names;
  if (!loadManifest(Opts.Paths.manifestPath(), Names, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  if (!blessGoldens(Opts.Paths, Names, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("blessed %zu artifacts: %s -> %s/golden\n", Names.size(),
              Opts.Paths.OutDir.c_str(), Opts.Paths.RefsDir.c_str());
  return 0;
}

int cmdDeterminism(const Options &Opts) {
  DeterminismOutcome Outcome = checkSweepDeterminism(Opts.Jobs, Opts.Kernel);
  std::printf("determinism: %s\n%s\n", Outcome.Ok ? "ok" : "FAIL",
              Outcome.Detail.c_str());
  return Outcome.Ok ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Command = Argv[1];
  Options Opts = parseOptions(Argc, Argv, 2);
  if (!Opts.Ok)
    return usage();
  if (Command == "diff")
    return cmdDiff(Opts);
  if (Command == "fidelity")
    return cmdFidelity(Opts);
  if (Command == "bless")
    return cmdBless(Opts);
  if (Command == "determinism")
    return cmdDeterminism(Opts);
  return usage();
}
