//===- tools/hetsim_stats.cpp - Metrics artifact inspector ----------------===//
///
/// \file
/// Validates and summarizes the metrics JSON artifacts the simulator
/// emits (`hetsim run --metrics out.json`, or a sweep dump named by
/// $HETSIM_METRICS_JSON). Both the single-run "hetsim-metrics-v1" and
/// the sweep "hetsim-sweep-metrics-v1" schemas are accepted.
///
/// usage:
///   hetsim_stats validate <file.json>            schema check only
///   hetsim_stats show <file.json> [--prefix p]   print metric values
///   hetsim_stats audit <file.json>               conservation verdicts
///
/// Exit status is nonzero on unreadable files, schema violations, and
/// (for audit) any point whose run.conservation_ok is not 1 — so CI can
/// gate on it directly.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Metrics.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace hetsim;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hetsim_stats validate <file.json>\n"
               "  hetsim_stats show <file.json> [--prefix <dotted.prefix>]\n"
               "  hetsim_stats audit <file.json>\n");
  return 2;
}

/// One labelled metrics object out of either schema.
struct PointView {
  std::string Label;
  const JsonValue *Metrics = nullptr;
};

/// Loads \p Path, schema-checks it, and flattens it to labelled points.
/// Returns false after printing a diagnostic.
bool loadPoints(const std::string &Path, JsonValue &Doc,
                std::vector<PointView> &Points) {
  std::string Text;
  if (!readTextFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return false;
  }
  std::string Error;
  if (!validateMetricsJson(Text, Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return false;
  }
  // validateMetricsJson already parsed successfully; parse again for the DOM.
  if (!parseJson(Text, Doc, Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return false;
  }

  if (const JsonValue *Metrics = Doc.find("metrics")) {
    Points.push_back({"run", Metrics});
    return true;
  }
  const JsonValue *Sweep = Doc.find("points");
  for (size_t I = 0; I != Sweep->Elements.size(); ++I) {
    const JsonValue &Point = Sweep->Elements[I];
    std::string Label = "point " + std::to_string(I);
    const JsonValue *System = Point.find("system");
    const JsonValue *Kernel = Point.find("kernel");
    if (System && System->isString() && Kernel && Kernel->isString())
      Label = System->StringValue + " / " + Kernel->StringValue;
    Points.push_back({Label, Point.find("metrics")});
  }
  return true;
}

int cmdValidate(const std::string &Path) {
  JsonValue Doc;
  std::vector<PointView> Points;
  if (!loadPoints(Path, Doc, Points))
    return 1;
  std::printf("%s: valid (%zu point%s)\n", Path.c_str(), Points.size(),
              Points.size() == 1 ? "" : "s");
  return 0;
}

int cmdShow(const std::string &Path, const std::string &Prefix) {
  JsonValue Doc;
  std::vector<PointView> Points;
  if (!loadPoints(Path, Doc, Points))
    return 1;
  for (const PointView &View : Points) {
    std::printf("%s:\n", View.Label.c_str());
    size_t Shown = 0;
    for (const auto &Member : View.Metrics->Members) {
      if (!Prefix.empty() &&
          Member.first.compare(0, Prefix.size(), Prefix) != 0)
        continue;
      ++Shown;
      if (Member.second.isNumber())
        std::printf("  %-44s %.6g\n", Member.first.c_str(),
                    Member.second.NumberValue);
      else
        std::printf("  %-44s null\n", Member.first.c_str());
    }
    if (Shown == 0)
      std::printf("  (no metrics%s%s)\n",
                  Prefix.empty() ? "" : " matching prefix ",
                  Prefix.c_str());
  }
  return 0;
}

int cmdAudit(const std::string &Path) {
  JsonValue Doc;
  std::vector<PointView> Points;
  if (!loadPoints(Path, Doc, Points))
    return 1;
  size_t Violations = 0;
  for (const PointView &View : Points) {
    const JsonValue *Ok = View.Metrics->find("run.conservation_ok");
    bool Pass = Ok && Ok->isNumber() && Ok->NumberValue != 0;
    if (!Pass)
      ++Violations;
    std::printf("%-40s conservation %s\n", View.Label.c_str(),
                !Ok ? "UNKNOWN (metric missing)"
                    : (Pass ? "ok" : "VIOLATED"));
  }
  std::printf("%zu/%zu points conserve DRAM traffic\n",
              Points.size() - Violations, Points.size());
  return Violations == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Command = Argv[1];
  std::string Path = Argv[2];
  if (Command == "validate" && Argc == 3)
    return cmdValidate(Path);
  if (Command == "show") {
    std::string Prefix;
    if (Argc == 5 && std::strcmp(Argv[3], "--prefix") == 0)
      Prefix = Argv[4];
    else if (Argc != 3)
      return usage();
    return cmdShow(Path, Prefix);
  }
  if (Command == "audit" && Argc == 3)
    return cmdAudit(Path);
  return usage();
}
