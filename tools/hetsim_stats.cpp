//===- tools/hetsim_stats.cpp - Metrics artifact inspector ----------------===//
///
/// \file
/// Validates and summarizes the metrics JSON artifacts the simulator
/// emits (`hetsim run --metrics out.json`, or a sweep dump named by
/// $HETSIM_METRICS_JSON). The single-run "hetsim-metrics-v1", the sweep
/// "hetsim-sweep-metrics-v1", and the linter's "hetsim-lint-v1"
/// (`hetsim_lint --json`) schemas are all accepted.
///
/// usage:
///   hetsim_stats validate <file.json>            schema check only
///   hetsim_stats show <file.json> [--prefix p]   print metric values
///   hetsim_stats audit <file.json>               conservation verdicts
///
/// Exit status is nonzero on unreadable files, schema violations, and
/// (for audit) any point whose run.conservation_ok is not 1 — or, for a
/// lint document, any error, race, or disagreement — so CI can gate on
/// it directly.
///
//===----------------------------------------------------------------------===//

#include "analysis/LintJson.h"
#include "obs/Json.h"
#include "obs/Metrics.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace hetsim;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hetsim_stats validate <file.json>\n"
               "  hetsim_stats show <file.json> [--prefix <dotted.prefix>]\n"
               "  hetsim_stats audit <file.json>\n");
  return 2;
}

/// One labelled metrics object out of either schema.
struct PointView {
  std::string Label;
  const JsonValue *Metrics = nullptr;
};

/// True when \p Text carries the linter's diagnostics schema rather than
/// a metrics document.
bool isLintDocument(const std::string &Text) {
  JsonValue Doc;
  std::string Error;
  if (!parseJson(Text, Doc, Error))
    return false;
  const JsonValue *Schema = Doc.find("schema");
  return Schema && Schema->isString() &&
         Schema->StringValue == "hetsim-lint-v1";
}

/// Prints per-point lint verdicts; returns the number of points with
/// errors, races, or disagreements.
size_t summarizeLintPoints(const JsonValue &Doc) {
  size_t Dirty = 0;
  const JsonValue *Points = Doc.find("points");
  for (const JsonValue &Point : Points->Elements) {
    std::string Label = Point.find("system")->StringValue + " /";
    for (const JsonValue &Kernel : Point.find("kernels")->Elements)
      Label += " " + Kernel.StringValue;
    uint64_t Errors = uint64_t(Point.find("errors")->NumberValue);
    uint64_t Warnings = uint64_t(Point.find("warnings")->NumberValue);
    uint64_t Races = uint64_t(Point.find("race_count")->NumberValue);
    bool Disagrees = Point.find("disagreement")->BoolValue;
    if (Errors != 0 || Races != 0 || Disagrees)
      ++Dirty;
    std::printf("%-40s %llu error(s), %llu warning(s), %llu race(s)%s\n",
                Label.c_str(), (unsigned long long)Errors,
                (unsigned long long)Warnings, (unsigned long long)Races,
                Disagrees ? ", DISAGREEMENT" : "");
  }
  return Dirty;
}

/// Loads a "hetsim-lint-v1" document; \p Audit additionally fails on any
/// error/race/disagreement.
int handleLintDocument(const std::string &Path, const std::string &Text,
                       bool Verbose, bool Audit) {
  std::string Error;
  if (!validateLintJson(Text, Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return 1;
  }
  JsonValue Doc;
  parseJson(Text, Doc, Error);
  size_t Dirty = Verbose || Audit ? summarizeLintPoints(Doc) : 0;
  const JsonValue *Summary = Doc.find("summary");
  std::printf("%s: valid lint document (%g points, %g errors, %g "
              "warnings, %g races, %g disagreements)\n",
              Path.c_str(), Summary->find("points")->NumberValue,
              Summary->find("errors")->NumberValue,
              Summary->find("warnings")->NumberValue,
              Summary->find("races")->NumberValue,
              Summary->find("disagreements")->NumberValue);
  return Audit && Dirty != 0 ? 1 : 0;
}

/// Loads \p Path, schema-checks it, and flattens it to labelled points.
/// Returns false after printing a diagnostic.
bool loadPoints(const std::string &Path, JsonValue &Doc,
                std::vector<PointView> &Points) {
  std::string Text;
  if (!readTextFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return false;
  }
  std::string Error;
  if (!validateMetricsJson(Text, Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return false;
  }
  // validateMetricsJson already parsed successfully; parse again for the DOM.
  if (!parseJson(Text, Doc, Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return false;
  }

  if (const JsonValue *Metrics = Doc.find("metrics")) {
    Points.push_back({"run", Metrics});
    return true;
  }
  const JsonValue *Sweep = Doc.find("points");
  for (size_t I = 0; I != Sweep->Elements.size(); ++I) {
    const JsonValue &Point = Sweep->Elements[I];
    std::string Label = "point " + std::to_string(I);
    const JsonValue *System = Point.find("system");
    const JsonValue *Kernel = Point.find("kernel");
    if (System && System->isString() && Kernel && Kernel->isString())
      Label = System->StringValue + " / " + Kernel->StringValue;
    Points.push_back({Label, Point.find("metrics")});
  }
  return true;
}

int cmdValidate(const std::string &Path) {
  std::string Text;
  if (readTextFile(Path, Text) && isLintDocument(Text))
    return handleLintDocument(Path, Text, /*Verbose=*/false,
                              /*Audit=*/false);
  JsonValue Doc;
  std::vector<PointView> Points;
  if (!loadPoints(Path, Doc, Points))
    return 1;
  std::printf("%s: valid (%zu point%s)\n", Path.c_str(), Points.size(),
              Points.size() == 1 ? "" : "s");
  return 0;
}

/// Memory-fast-path fold coverage (DESIGN.md §11), printed after a
/// point's metrics when the memfast.* counters are present: how often the
/// steady-state fold engaged, how much of the stream it retired in closed
/// form, and which precondition each fall-back tripped on.
void summarizeFoldCoverage(const JsonValue &Metrics) {
  const JsonValue *Attempts = Metrics.find("memfast.fold_attempts");
  if (!Attempts || !Attempts->isNumber())
    return;
  auto Num = [&](const char *Key) {
    const JsonValue *V = Metrics.find(Key);
    return V && V->isNumber() ? V->NumberValue : 0.0;
  };
  std::printf("  fold coverage: %.0f/%.0f attempts folded, %.0f records "
              "extrapolated\n",
              Num("memfast.folds"), Attempts->NumberValue,
              Num("memfast.folded_records"));
  for (const auto &Member : Metrics.Members) {
    const std::string Fallback = "memfast.fallback.";
    if (Member.first.compare(0, Fallback.size(), Fallback) != 0)
      continue;
    if (!Member.second.isNumber() || Member.second.NumberValue == 0)
      continue;
    std::printf("    fall-back %-24s %.0f\n",
                Member.first.c_str() + Fallback.size(),
                Member.second.NumberValue);
  }
  if (Num("memfast.sampled_windows") != 0)
    std::printf("  sampling: %.0f bursts, %.0f records extrapolated\n",
                Num("memfast.sampled_windows"),
                Num("memfast.sampled_records"));
}

int cmdShow(const std::string &Path, const std::string &Prefix) {
  std::string Text;
  if (readTextFile(Path, Text) && isLintDocument(Text))
    return handleLintDocument(Path, Text, /*Verbose=*/true,
                              /*Audit=*/false);
  JsonValue Doc;
  std::vector<PointView> Points;
  if (!loadPoints(Path, Doc, Points))
    return 1;
  for (const PointView &View : Points) {
    std::printf("%s:\n", View.Label.c_str());
    size_t Shown = 0;
    for (const auto &Member : View.Metrics->Members) {
      if (!Prefix.empty() &&
          Member.first.compare(0, Prefix.size(), Prefix) != 0)
        continue;
      ++Shown;
      if (Member.second.isNumber())
        std::printf("  %-44s %.6g\n", Member.first.c_str(),
                    Member.second.NumberValue);
      else
        std::printf("  %-44s null\n", Member.first.c_str());
    }
    if (Shown == 0)
      std::printf("  (no metrics%s%s)\n",
                  Prefix.empty() ? "" : " matching prefix ",
                  Prefix.c_str());
    if (Prefix.empty() || Prefix.compare(0, 7, "memfast") == 0)
      summarizeFoldCoverage(*View.Metrics);
  }
  return 0;
}

int cmdAudit(const std::string &Path) {
  std::string Text;
  if (readTextFile(Path, Text) && isLintDocument(Text))
    return handleLintDocument(Path, Text, /*Verbose=*/true,
                              /*Audit=*/true);
  JsonValue Doc;
  std::vector<PointView> Points;
  if (!loadPoints(Path, Doc, Points))
    return 1;
  size_t Violations = 0;
  for (const PointView &View : Points) {
    const JsonValue *Ok = View.Metrics->find("run.conservation_ok");
    bool Pass = Ok && Ok->isNumber() && Ok->NumberValue != 0;
    if (!Pass)
      ++Violations;
    std::printf("%-40s conservation %s\n", View.Label.c_str(),
                !Ok ? "UNKNOWN (metric missing)"
                    : (Pass ? "ok" : "VIOLATED"));
  }
  std::printf("%zu/%zu points conserve DRAM traffic\n",
              Points.size() - Violations, Points.size());
  return Violations == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Command = Argv[1];
  std::string Path = Argv[2];
  if (Command == "validate" && Argc == 3)
    return cmdValidate(Path);
  if (Command == "show") {
    std::string Prefix;
    if (Argc == 5 && std::strcmp(Argv[3], "--prefix") == 0)
      Prefix = Argv[4];
    else if (Argc != 3)
      return usage();
    return cmdShow(Path, Prefix);
  }
  if (Command == "audit" && Argc == 3)
    return cmdAudit(Path);
  return usage();
}
