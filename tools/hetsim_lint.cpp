//===- tools/hetsim_lint.cpp - Memory-model linter front end --------------===//
///
/// \file
/// The `hetsim_lint` command-line tool: static race/hazard analysis over
/// lowered programs, before any cycle simulation runs.
///
///   hetsim_lint [--all] [--jobs N] [--model M] [--json FILE]
///   hetsim_lint --system S --kernel K [--dot] [--json FILE]
///       [--max-diagnostics N] [key=value ...]
///   hetsim_lint --corun K1,K2[,...] --system S [--share OBJ[,...]]
///       [--json FILE] [--max-diagnostics N]
///   hetsim_lint --fuzz N [--seed S]
///
/// Without a mode flag the tool verifies the whole shipped design space
/// (five case studies plus four address-space studies, across all six
/// kernels): per-program lint, whole-system race detection, and the
/// dynamic ConsistencyChecker as a differential oracle. --corun composes
/// several kernels as concurrently running agents (optionally sharing
/// allocations named by --share) and race-checks the composition.
/// --fuzz runs the seeded differential fuzzer (analysis/LintFuzzer.h).
/// --json writes a "hetsim-lint-v1" document ("-" for stdout).
///
/// Exit codes, by severity class:
///   0  clean
///   1  warnings only
///   2  usage error (unknown flag/system/kernel/model)
///   3  lint errors
///   4  races, static/dynamic disagreements, or fuzz contract failures
///
//===----------------------------------------------------------------------===//

#include "analysis/LintFuzzer.h"
#include "analysis/LintJson.h"
#include "analysis/SweepLinter.h"
#include "core/ConsistencyValidation.h"
#include "core/Experiments.h"
#include "obs/Json.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

using namespace hetsim;

namespace {

// Severity-class exit codes.
enum : int {
  ExitClean = 0,
  ExitWarnings = 1,
  ExitUsage = 2,
  ExitErrors = 3,
  ExitRaces = 4,
};

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hetsim_lint [--all] [--jobs N] [--model weak|release|strong]\n"
      "          [--json FILE]\n"
      "  hetsim_lint --system <name> --kernel <name> [--dot] [--json FILE]\n"
      "          [--max-diagnostics N] [--model M] [key=value ...]\n"
      "  hetsim_lint --corun <k1,k2,...> --system <name> [--share o1,...]\n"
      "          [--json FILE] [--max-diagnostics N] [--model M]\n"
      "  hetsim_lint --fuzz <cases> [--seed S]\n"
      "systems: CPU+GPU LRB GMAC Fusion IDEAL-HETERO UNI PAS DIS ADSM\n"
      "exit codes: 0 clean, 1 warnings, 2 usage, 3 errors, 4 races\n");
  return ExitUsage;
}

bool systemByName(const std::string &Name, SystemConfig &Out,
                  const ConfigStore &Overrides) {
  for (CaseStudy Study : allCaseStudies()) {
    if (Name == caseStudyName(Study)) {
      Out = SystemConfig::forCaseStudy(Study, Overrides);
      return true;
    }
  }
  static const AddressSpaceKind Kinds[] = {
      AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
      AddressSpaceKind::Disjoint, AddressSpaceKind::Adsm};
  for (AddressSpaceKind Kind : Kinds) {
    if (Name == addressSpaceShortName(Kind)) {
      Out = SystemConfig::forAddressSpaceStudy(Kind, Overrides);
      return true;
    }
  }
  return false;
}

bool modelByName(const std::string &Name, ConsistencyModel &Out) {
  if (Name == "weak") {
    Out = ConsistencyModel::Weak;
    return true;
  }
  if (Name == "release") {
    Out = ConsistencyModel::CentralizedRelease;
    return true;
  }
  if (Name == "strong") {
    Out = ConsistencyModel::Strong;
    return true;
  }
  return false;
}

std::vector<std::string> splitList(const std::string &Text) {
  std::vector<std::string> Parts;
  std::string Part;
  std::istringstream Is(Text);
  while (std::getline(Is, Part, ','))
    if (!Part.empty())
      Parts.push_back(Part);
  return Parts;
}

/// Writes \p Doc to \p Path ("-" for stdout). Returns false after a
/// diagnostic.
bool emitJson(const std::string &Path, const std::string &Doc) {
  if (Path == "-") {
    std::printf("%s\n", Doc.c_str());
    return true;
  }
  if (!writeTextFile(Path, Doc + "\n")) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  return true;
}

/// Prints at most \p MaxDiagnostics lines of \p Text (0 = no cap) and a
/// suppression note for the rest.
void printCapped(const std::string &Text, size_t MaxDiagnostics) {
  if (MaxDiagnostics == 0) {
    std::printf("%s", Text.c_str());
    return;
  }
  size_t Printed = 0, Pos = 0, Total = 0;
  for (size_t I = 0; I != Text.size(); ++I)
    if (Text[I] == '\n')
      ++Total;
  while (Pos < Text.size() && Printed < MaxDiagnostics) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size() - 1;
    std::fwrite(Text.data() + Pos, 1, End - Pos + 1, stdout);
    Pos = End + 1;
    ++Printed;
  }
  if (Pos < Text.size())
    std::printf("  (suppressed %zu of %zu diagnostic lines; raise "
                "--max-diagnostics)\n",
                Total - Printed, Total);
}

/// Folds one point's verdicts into a severity-class exit code.
int exitCodeFor(const LintReport &Report, const RaceReport &Races,
                bool Disagreement) {
  if (!Races.clean() || Disagreement)
    return ExitRaces;
  if (Report.errorCount() != 0)
    return ExitErrors;
  if (Report.warningCount() != 0)
    return ExitWarnings;
  return ExitClean;
}

int lintAll(unsigned Jobs, ConsistencyModel Model,
            const std::string &JsonPath) {
  SweepLintSummary Summary = lintSweep(shippedDesignSpace(), Jobs, Model);
  std::printf("%s", Summary.render().c_str());
  if (!JsonPath.empty()) {
    std::vector<LintJsonPoint> Points;
    for (const SweepLintResult &R : Summary.Results) {
      LintJsonPoint Point;
      Point.System = R.System;
      Point.Kernels = {kernelName(R.Kernel)};
      Point.Report = R.Report;
      Point.Races = R.Races;
      Point.DynamicallyRaceFree = R.DynamicallyRaceFree;
      Point.Disagreement = R.disagreement();
      Points.push_back(std::move(Point));
    }
    if (!emitJson(JsonPath, writeLintJson(Points, Model)))
      return ExitUsage;
  }
  if (Summary.pointsWithRaces() != 0 || Summary.disagreements() != 0)
    return ExitRaces;
  if (Summary.pointsWithErrors() != 0)
    return ExitErrors;
  return Summary.pointsWithWarnings() != 0 ? ExitWarnings : ExitClean;
}

int lintPoint(const SystemConfig &Config, KernelId Kernel, bool Dot,
              ConsistencyModel Model, const std::string &JsonPath,
              size_t MaxDiagnostics) {
  LoweredProgram Program = lowerKernel(Kernel, Config);
  if (Dot) {
    HbGraph Graph = HbGraph::build(Program, Config);
    std::printf("%s", Graph.renderDot(Program).c_str());
    return ExitClean;
  }
  LintReport Report = lintProgram(Program, Config);
  RaceReport Races = RaceDetector::analyze(Program, Config, Model);
  bool RaceFree = validateRaceFree(Program, Model);
  bool Disagreement =
      Report.errorCount() == 0 && Races.clean() && !RaceFree;
  std::printf(
      "%s / %s: %u error(s), %u warning(s), %zu race(s); dynamic replay "
      "%s\n",
      Config.Name.c_str(), kernelName(Kernel), Report.errorCount(),
      Report.warningCount(), Races.Races.size(),
      RaceFree ? "race-free" : "RACY");
  printCapped(renderReport(Report, Program) + Races.render(),
              MaxDiagnostics);
  if (Disagreement)
    std::printf("disagreement: static-clean but dynamically racy under "
                "%s consistency\n",
                consistencyModelName(Model));
  if (!JsonPath.empty()) {
    LintJsonPoint Point;
    Point.System = Config.Name;
    Point.Kernels = {kernelName(Kernel)};
    Point.Report = Report;
    Point.Races = Races;
    Point.DynamicallyRaceFree = RaceFree;
    Point.Disagreement = Disagreement;
    if (!emitJson(JsonPath, writeLintJson({Point}, Model)))
      return ExitUsage;
  }
  return exitCodeFor(Report, Races, Disagreement);
}

int lintCorun(const SystemConfig &Config,
              const std::vector<KernelId> &Kernels,
              const std::vector<std::string> &Shared,
              ConsistencyModel Model, const std::string &JsonPath,
              size_t MaxDiagnostics) {
  CorunProgram Corun = lowerCorun(Kernels, Config, Shared);
  // Per-agent data-flow lint first, then the whole-system verifier.
  LintReport Combined;
  Combined.System = Config.Name;
  std::string Text;
  for (size_t A = 0; A != Corun.Agents.size(); ++A) {
    const CorunAgent &Agent = Corun.Agents[A];
    LintReport Report = lintProgram(Agent.Program, Config);
    if (!Report.clean()) {
      Text += Agent.Name + " (" + kernelName(Agent.Kernel) + "):\n";
      Text += renderReport(Report, Agent.Program);
    }
    for (const LintDiagnostic &Diag : Report.Diags)
      Combined.Diags.push_back(Diag);
  }
  RaceDetector Detector(Corun, Model);
  RaceReport Races = Detector.detect();
  bool RaceFree = validateCorunRaceFree(Corun, Model);
  bool Disagreement =
      Combined.errorCount() == 0 && Races.clean() && !RaceFree;

  std::printf("%s co-run [", Config.Name.c_str());
  for (size_t A = 0; A != Corun.Agents.size(); ++A)
    std::printf("%s%s", A == 0 ? "" : ", ",
                kernelName(Corun.Agents[A].Kernel));
  std::printf("]");
  if (!Corun.SharedBases.empty()) {
    std::printf(" sharing [");
    for (size_t I = 0; I != Corun.SharedBases.size(); ++I)
      std::printf("%s%s", I == 0 ? "" : ", ",
                  Corun.SharedBases[I].c_str());
    std::printf("]");
  }
  std::printf(": %u error(s), %u warning(s), %s; dynamic replay %s\n",
              Combined.errorCount(), Combined.warningCount(),
              Races.summary().c_str(), RaceFree ? "race-free" : "RACY");
  printCapped(Text + Races.render(), MaxDiagnostics);
  if (Disagreement)
    std::printf("disagreement: static-clean but dynamically racy under "
                "%s consistency\n",
                consistencyModelName(Model));
  if (!JsonPath.empty()) {
    LintJsonPoint Point;
    Point.System = Config.Name;
    for (const CorunAgent &Agent : Corun.Agents)
      Point.Kernels.push_back(kernelName(Agent.Kernel));
    Point.SharedBases = Corun.SharedBases;
    Point.Report = Combined;
    Point.Races = Races;
    Point.DynamicallyRaceFree = RaceFree;
    Point.Disagreement = Disagreement;
    if (!emitJson(JsonPath, writeLintJson({Point}, Model)))
      return ExitUsage;
  }
  return exitCodeFor(Combined, Races, Disagreement);
}

int runFuzz(size_t Cases, uint64_t Seed) {
  FuzzStats Stats = fuzzVerifier(Cases, Seed);
  std::printf("%s", Stats.render().c_str());
  return Stats.passed() ? ExitClean : ExitRaces;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string System;
  std::string Kernel;
  std::string CorunKernels;
  std::string Share;
  std::string ModelName = "weak";
  std::string JsonPath;
  ConfigStore Overrides;
  unsigned Jobs = 0;
  size_t MaxDiagnostics = 0;
  size_t FuzzCases = 0;
  uint64_t Seed = 1;
  bool Dot = false;
  bool Fuzz = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto TakeValue = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    std::string Value;
    if (Arg == "--all") {
      // The default mode; accepted for explicitness.
    } else if (Arg == "--system") {
      if (!TakeValue(System))
        return usage();
    } else if (Arg == "--kernel") {
      if (!TakeValue(Kernel))
        return usage();
    } else if (Arg == "--corun") {
      if (!TakeValue(CorunKernels))
        return usage();
    } else if (Arg == "--share") {
      if (!TakeValue(Share))
        return usage();
    } else if (Arg == "--model") {
      if (!TakeValue(ModelName))
        return usage();
    } else if (Arg == "--json") {
      if (!TakeValue(JsonPath))
        return usage();
    } else if (Arg == "--jobs") {
      if (!TakeValue(Value))
        return usage();
      Jobs = unsigned(std::strtoul(Value.c_str(), nullptr, 0));
    } else if (Arg == "--max-diagnostics") {
      if (!TakeValue(Value))
        return usage();
      MaxDiagnostics = std::strtoul(Value.c_str(), nullptr, 0);
    } else if (Arg == "--fuzz") {
      if (!TakeValue(Value))
        return usage();
      Fuzz = true;
      FuzzCases = std::strtoul(Value.c_str(), nullptr, 0);
    } else if (Arg == "--seed") {
      if (!TakeValue(Value))
        return usage();
      Seed = std::strtoull(Value.c_str(), nullptr, 0);
    } else if (Arg == "--dot") {
      Dot = true;
    } else if (Arg.find('=') != std::string::npos) {
      if (!Overrides.parseAssignment(Arg))
        return usage();
    } else {
      return usage();
    }
  }

  ConsistencyModel Model;
  if (!modelByName(ModelName, Model)) {
    std::fprintf(stderr, "error: unknown consistency model '%s'\n",
                 ModelName.c_str());
    return ExitUsage;
  }

  if (Fuzz) {
    if (FuzzCases == 0) {
      std::fprintf(stderr, "error: --fuzz needs a positive case count\n");
      return ExitUsage;
    }
    return runFuzz(FuzzCases, Seed);
  }

  if (!CorunKernels.empty()) {
    if (System.empty() || !Kernel.empty())
      return usage();
    SystemConfig Config;
    if (!systemByName(System, Config, Overrides)) {
      std::fprintf(stderr, "error: unknown system '%s'\n", System.c_str());
      return ExitUsage;
    }
    std::vector<KernelId> Ids;
    for (const std::string &Name : splitList(CorunKernels)) {
      KernelId Id;
      if (!kernelByName(Name.c_str(), Id)) {
        std::fprintf(stderr, "error: unknown kernel '%s'\n", Name.c_str());
        return ExitUsage;
      }
      Ids.push_back(Id);
    }
    if (Ids.empty()) {
      std::fprintf(stderr, "error: --corun needs at least one kernel\n");
      return ExitUsage;
    }
    return lintCorun(Config, Ids, splitList(Share), Model, JsonPath,
                     MaxDiagnostics);
  }

  if (System.empty() != Kernel.empty())
    return usage();
  if (System.empty())
    return lintAll(Jobs, Model, JsonPath);

  SystemConfig Config;
  if (!systemByName(System, Config, Overrides)) {
    std::fprintf(stderr, "error: unknown system '%s'\n", System.c_str());
    return ExitUsage;
  }
  KernelId Id;
  if (!kernelByName(Kernel.c_str(), Id)) {
    std::fprintf(stderr, "error: unknown kernel '%s'\n", Kernel.c_str());
    return ExitUsage;
  }
  return lintPoint(Config, Id, Dot, Model, JsonPath, MaxDiagnostics);
}
