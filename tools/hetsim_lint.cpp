//===- tools/hetsim_lint.cpp - Memory-model linter front end --------------===//
///
/// \file
/// The `hetsim_lint` command-line tool: static race/hazard analysis over
/// lowered programs, before any cycle simulation runs.
///
///   hetsim_lint [--all] [--jobs N] [--model weak|release|strong]
///   hetsim_lint --system LRB --kernel reduction [--dot] [key=value ...]
///
/// Without --system/--kernel the tool lints the whole shipped design
/// space (five case studies plus four address-space studies, across all
/// six kernels) and cross-checks every verdict against the dynamic
/// ConsistencyChecker. The exit status is nonzero on any diagnostic or
/// any static/dynamic disagreement, so scripts/lint.sh can gate on it.
///
//===----------------------------------------------------------------------===//

#include "analysis/SweepLinter.h"
#include "core/ConsistencyValidation.h"
#include "core/Experiments.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace hetsim;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hetsim_lint [--all] [--jobs N] [--model weak|release|strong]\n"
      "  hetsim_lint --system <name> --kernel <name> [--dot]\n"
      "          [--model weak|release|strong] [key=value ...]\n"
      "systems: CPU+GPU LRB GMAC Fusion IDEAL-HETERO UNI PAS DIS ADSM\n");
  return 2;
}

bool systemByName(const std::string &Name, SystemConfig &Out,
                  const ConfigStore &Overrides) {
  for (CaseStudy Study : allCaseStudies()) {
    if (Name == caseStudyName(Study)) {
      Out = SystemConfig::forCaseStudy(Study, Overrides);
      return true;
    }
  }
  static const AddressSpaceKind Kinds[] = {
      AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
      AddressSpaceKind::Disjoint, AddressSpaceKind::Adsm};
  for (AddressSpaceKind Kind : Kinds) {
    if (Name == addressSpaceShortName(Kind)) {
      Out = SystemConfig::forAddressSpaceStudy(Kind, Overrides);
      return true;
    }
  }
  return false;
}

bool modelByName(const std::string &Name, ConsistencyModel &Out) {
  if (Name == "weak") {
    Out = ConsistencyModel::Weak;
    return true;
  }
  if (Name == "release") {
    Out = ConsistencyModel::CentralizedRelease;
    return true;
  }
  if (Name == "strong") {
    Out = ConsistencyModel::Strong;
    return true;
  }
  return false;
}

int lintAll(unsigned Jobs, ConsistencyModel Model) {
  SweepLintSummary Summary = lintSweep(shippedDesignSpace(), Jobs, Model);
  unsigned Diagnostics = 0;
  for (const SweepLintResult &R : Summary.Results) {
    if (R.Report.clean() && !R.disagreement())
      continue;
    // Re-lower for rendering: the sweep keeps only the verdicts.
    SystemConfig Config;
    ConfigStore Empty;
    if (!systemByName(R.System, Config, Empty))
      Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
    LoweredProgram Program = lowerKernel(R.Kernel, Config);
    std::printf("%s / %s:\n", R.System.c_str(), kernelName(R.Kernel));
    std::printf("%s", renderReport(R.Report, Program).c_str());
    if (R.disagreement())
      std::printf("  disagreement: static-clean but dynamically racy "
                  "under %s consistency\n",
                  consistencyModelName(Model));
    Diagnostics += unsigned(R.Report.Diags.size());
  }
  std::printf("%s\n", Summary.summary().c_str());
  return (Diagnostics == 0 && Summary.disagreements() == 0) ? 0 : 1;
}

int lintPoint(const SystemConfig &Config, KernelId Kernel, bool Dot,
              ConsistencyModel Model) {
  LoweredProgram Program = lowerKernel(Kernel, Config);
  if (Dot) {
    HbGraph Graph = HbGraph::build(Program, Config);
    std::printf("%s", Graph.renderDot(Program).c_str());
    return 0;
  }
  LintReport Report = lintProgram(Program, Config);
  bool RaceFree = validateRaceFree(Program, Model);
  std::printf("%s / %s: %u error(s), %u warning(s); dynamic replay %s\n",
              Config.Name.c_str(), kernelName(Kernel),
              Report.errorCount(), Report.warningCount(),
              RaceFree ? "race-free" : "RACY");
  std::printf("%s", renderReport(Report, Program).c_str());
  if (Report.errorCount() == 0 && !RaceFree) {
    std::printf("disagreement: static-clean but dynamically racy under "
                "%s consistency\n",
                consistencyModelName(Model));
    return 1;
  }
  return Report.clean() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string System;
  std::string Kernel;
  std::string ModelName = "weak";
  ConfigStore Overrides;
  unsigned Jobs = 0;
  bool Dot = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto TakeValue = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    std::string Value;
    if (Arg == "--all") {
      // The default mode; accepted for explicitness.
    } else if (Arg == "--system") {
      if (!TakeValue(System))
        return usage();
    } else if (Arg == "--kernel") {
      if (!TakeValue(Kernel))
        return usage();
    } else if (Arg == "--model") {
      if (!TakeValue(ModelName))
        return usage();
    } else if (Arg == "--jobs") {
      if (!TakeValue(Value))
        return usage();
      Jobs = unsigned(std::strtoul(Value.c_str(), nullptr, 0));
    } else if (Arg == "--dot") {
      Dot = true;
    } else if (Arg.find('=') != std::string::npos) {
      if (!Overrides.parseAssignment(Arg))
        return usage();
    } else {
      return usage();
    }
  }

  ConsistencyModel Model;
  if (!modelByName(ModelName, Model)) {
    std::fprintf(stderr, "error: unknown consistency model '%s'\n",
                 ModelName.c_str());
    return 2;
  }

  if (System.empty() != Kernel.empty())
    return usage();
  if (System.empty())
    return lintAll(Jobs, Model);

  SystemConfig Config;
  if (!systemByName(System, Config, Overrides)) {
    std::fprintf(stderr, "error: unknown system '%s'\n", System.c_str());
    return 2;
  }
  KernelId Id;
  if (!kernelByName(Kernel.c_str(), Id)) {
    std::fprintf(stderr, "error: unknown kernel '%s'\n", Kernel.c_str());
    return 2;
  }
  return lintPoint(Config, Id, Dot, Model);
}
