//===- examples/custom_kernel.cpp - Bring your own workload ---------------===//
///
/// \file
/// Shows the lower-level public API: build a custom workload (a 5-point
/// stencil) directly as trace buffers and an executable step sequence,
/// then run it on two design points with HeteroSimulator::runLowered().
/// This is the path for evaluating kernels beyond the paper's six.
///
/// Build & run:  ./build/examples/custom_kernel
///
//===----------------------------------------------------------------------===//

#include "core/HeteroSimulator.h"

#include <cstdio>

using namespace hetsim;

namespace {

/// Emits one CPU stencil pass over [Base, Base+Bytes): for each point,
/// load 3 neighbours, combine, store.
TraceBuffer makeCpuStencil(Addr In, Addr Out, uint64_t Points) {
  TraceBuffer Trace;
  const uint32_t Pc = 0x800000;
  for (uint64_t I = 0; I != Points; ++I) {
    Addr Center = In + I * 4;
    uint8_t V = uint8_t(8 + I % 20);
    Trace.emitLoad(Pc + 0, V, Center, 4);
    Trace.emitLoad(Pc + 4, uint8_t(V + 1), Center + 4, 4);
    Trace.emitLoad(Pc + 8, uint8_t(V + 2), Center + 8, 4);
    Trace.emitAlu(Opcode::FpAlu, Pc + 12, uint8_t(V + 3), V, uint8_t(V + 1));
    Trace.emitAlu(Opcode::FpMac, Pc + 16, uint8_t(V + 3), uint8_t(V + 2),
                  6);
    Trace.emitStore(Pc + 20, uint8_t(V + 3), Out + I * 4, 4);
    Trace.emitBranch(Pc + 24, /*Taken=*/true, 0);
  }
  return Trace;
}

/// The same pass as 8-wide warps for the GPU.
TraceBuffer makeGpuStencil(Addr In, Addr Out, uint64_t Points) {
  TraceBuffer Trace;
  const uint32_t Pc = 0x900000;
  for (uint64_t I = 0; I != Points / 8; ++I) {
    Addr Center = In + I * 32;
    uint8_t V = uint8_t(8 + I % 20);
    Trace.emitSimdLoad(Pc + 0, V, Center, 4, 8, 4);
    Trace.emitSimdLoad(Pc + 4, uint8_t(V + 1), Center + 4, 4, 8, 4);
    Trace.emitAlu(Opcode::FpMac, Pc + 8, uint8_t(V + 2), V, uint8_t(V + 1));
    Trace.emitSimdStore(Pc + 12, uint8_t(V + 2), Out + I * 32, 4, 8, 4);
    Trace.emitBranch(Pc + 16, /*Taken=*/true, 0);
  }
  return Trace;
}

/// Assembles a lowered program: copy in, compute on both PUs, copy out.
LoweredProgram makeStencilProgram(const SystemConfig &Config,
                                  uint64_t Points) {
  const uint64_t Bytes = Points * 4;
  LoweredProgram Program;

  // Place input and output according to the configured address space.
  Addr Base = Config.AddrSpace == AddressSpaceKind::Disjoint
                  ? region::CpuPrivateBase
                  : region::SharedBase;
  DataSegment In{"in", Base, Bytes + 64, TransferDir::HostToDevice};
  DataSegment Out{"out", Base + Bytes + 4096, Bytes,
                  TransferDir::DeviceToHost};
  Program.Place.Kind = Config.AddrSpace;
  Program.Place.CpuLayout.addSegment(In);
  Program.Place.CpuLayout.addSegment(Out);

  // The GPU works on the second half; under a disjoint space it works on
  // duplicated buffers in its own region.
  Addr GpuBase = Config.AddrSpace == AddressSpaceKind::Disjoint
                     ? region::GpuPrivateBase
                     : Base;
  DataSegment GpuIn{"in", GpuBase, Bytes + 64, TransferDir::HostToDevice};
  DataSegment GpuOut{"out", GpuBase + Bytes + 4096, Bytes,
                     TransferDir::DeviceToHost};
  Program.Place.GpuLayout.addSegment(GpuIn);
  Program.Place.GpuLayout.addSegment(GpuOut);

  const uint64_t Half = Points / 2;
  if (Config.AddrSpace == AddressSpaceKind::Disjoint) {
    ExecStep CopyIn;
    CopyIn.Kind = ExecKind::Transfer;
    CopyIn.Bytes = Bytes;
    CopyIn.Dir = TransferDir::HostToDevice;
    CopyIn.Objects = {"in"};
    Program.Steps.push_back(std::move(CopyIn));
  }

  ExecStep Compute;
  Compute.Kind = ExecKind::ParallelCompute;
  Compute.CpuTrace = makeCpuStencil(In.Base, Out.Base, Half);
  Compute.GpuTrace =
      makeGpuStencil(GpuIn.Base + Half * 4, GpuOut.Base + Half * 4, Half);
  Program.Steps.push_back(std::move(Compute));

  if (Config.AddrSpace == AddressSpaceKind::Disjoint) {
    ExecStep CopyOut;
    CopyOut.Kind = ExecKind::Transfer;
    CopyOut.Bytes = Bytes;
    CopyOut.Dir = TransferDir::DeviceToHost;
    CopyOut.Objects = {"out"};
    Program.Steps.push_back(std::move(CopyOut));
  }
  return Program;
}

} // namespace

int main() {
  const uint64_t Points = 256 * 1024; // 1MB of f32 points.
  std::printf("Custom 5-point stencil over %llu points on two design "
              "points:\n\n",
              (unsigned long long)Points);

  for (CaseStudy Study : {CaseStudy::CpuGpu, CaseStudy::IdealHetero}) {
    SystemConfig Config = SystemConfig::forCaseStudy(Study);
    HeteroSimulator Sim(Config);
    LoweredProgram Program = makeStencilProgram(Config, Points);
    RunResult R = Sim.runLowered(Program);
    std::printf("  %-14s total %8.1f us (par %8.1f, comm %6.1f)  "
                "CPU IPC %.2f, GPU mem accesses %llu\n",
                Config.Name.c_str(), R.Time.totalNs() / 1e3,
                R.Time.ParallelNs / 1e3, R.Time.CommunicationNs / 1e3,
                R.CpuTotal.ipc(),
                (unsigned long long)R.GpuTotal.MemAccesses);
  }

  std::printf("\nThe same trace-level API accepts any workload: emit "
              "records with\nTraceBuffer, wrap them in ExecSteps, and run "
              "them on any SystemConfig.\n");
  return 0;
}
