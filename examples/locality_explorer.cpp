//===- examples/locality_explorer.cpp - Locality-management options -------===//
///
/// \file
/// Explores Section II-B: enumerates the locality-management schemes each
/// address space admits, runs a kernel with implicit vs. explicit shared-
/// cache management (the `push` operation), and demonstrates the II-B5
/// hybrid replacement protecting pushed data from a streaming workload.
///
/// Build & run:  ./build/examples/locality_explorer
///
//===----------------------------------------------------------------------===//

#include "cache/Cache.h"
#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  // 1. Which schemes does each address space admit?
  std::printf("1. Locality-management schemes per address space "
              "(Section II-B)\n\n");
  std::printf("   canonical schemes:\n");
  for (const LocalityScheme &Scheme : canonicalLocalitySchemes())
    std::printf("     - %s\n", Scheme.render().c_str());
  std::printf("\n   admitted:  UNI=%u  PAS=%u  DIS=%u  ADSM=%u  "
              "(PAS admits all: conclusion 3)\n",
              localityOptionCount(AddressSpaceKind::Unified),
              localityOptionCount(AddressSpaceKind::PartiallyShared),
              localityOptionCount(AddressSpaceKind::Disjoint),
              localityOptionCount(AddressSpaceKind::Adsm));

  // 2. Implicit vs. explicit shared-space management on a real run. The
  //    paper: "the locality management option itself does not affect
  //    performance except for the additional push instructions".
  std::printf("\n2. Implicit vs. explicit shared-cache management "
              "(reduction, PAS)\n\n");
  for (SharedLocality Shared :
       {SharedLocality::Implicit, SharedLocality::Explicit}) {
    SystemConfig Config =
        SystemConfig::forAddressSpaceStudy(AddressSpaceKind::PartiallyShared);
    Config.Locality.Shared = Shared;
    Config.Hier.L3.Replacement = Shared == SharedLocality::Explicit
                                     ? ReplacementKind::HybridLru
                                     : ReplacementKind::Lru;
    HeteroSimulator Sim(Config);
    RunResult R = Sim.run(KernelId::Reduction);
    std::printf("   %-12s total %7.2f us (push overhead %5.2f us, "
                "%llu lines staged)\n",
                sharedLocalityName(Shared), R.Time.totalNs() / 1e3,
                R.PushNs / 1e3,
                (unsigned long long)Sim.memory().stats().counter(
                    "mem.push_lines"));
  }

  // 3. What the explicit tag buys under cache pressure (II-B5).
  std::printf("\n3. Hybrid replacement under streaming pressure "
              "(one 256KB L3 slice)\n\n");
  for (ReplacementKind Kind :
       {ReplacementKind::Lru, ReplacementKind::HybridLru}) {
    CacheConfig Config;
    Config.Name = "slice";
    Config.SizeBytes = 256 * 1024;
    Config.Ways = 8;
    Config.Replacement = Kind;
    Cache Slice(Config);

    // Pin a 64KB working set, then stream 4MB through.
    for (Addr Offset = 0; Offset < (64 << 10); Offset += CacheLineBytes)
      Slice.access(0x10000000 + Offset, false,
                   Kind == ReplacementKind::HybridLru);
    for (Addr Offset = 0; Offset < (4 << 20); Offset += CacheLineBytes)
      Slice.access(0x40000000 + Offset, false);

    unsigned Survived = 0, Total = 0;
    for (Addr Offset = 0; Offset < (64 << 10); Offset += CacheLineBytes) {
      Survived += Slice.probe(0x10000000 + Offset);
      ++Total;
    }
    std::printf("   %-10s pinned-set survival %3u%%  (bypassed fills: "
                "%llu)\n",
                Kind == ReplacementKind::Lru ? "LRU" : "HybridLRU",
                100 * Survived / Total,
                (unsigned long long)Slice.stats().BypassedFills);
  }

  std::printf("\nExplicit blocks carry one tag bit the replacement logic\n"
              "compares; implicit fills cannot evict them, and the\n"
              "explicit capacity is capped below the physical cache size\n"
              "— the two hardware requirements of Section II-B5.\n");

  // 4. Globalization / privatization (Section II-A3): moving an object
  //    between private and shared space at run time is a page-table
  //    remap + TLB shootdown, not a copy — compare its cost with
  //    actually transferring the data.
  std::printf("\n4. Globalization vs. transfer (Section II-A3)\n\n");
  {
    MemHierConfig Hier;
    MemorySystem Mem(Hier);
    const uint64_t Bytes = 320512; // Reduction's initial transfer.
    Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, Bytes);
    Cycle RemapCost = Mem.remapRange(PuKind::Cpu, region::CpuPrivateBase,
                                     region::SharedBase, Bytes);
    CommParams Params;
    std::printf("   globalize %llu bytes: remap %llu cycles  vs  PCI-E "
                "copy %llu cycles  vs  aperture %llu cycles\n",
                (unsigned long long)Bytes, (unsigned long long)RemapCost,
                (unsigned long long)Params.pciCopyCycles(Bytes),
                (unsigned long long)Params.ApiTransfer);
    std::printf("   remapping beats copying when the data is large and\n"
                "   both PUs can reach the shared region — another option\n"
                "   only the partially shared space offers.\n");
  }
  return 0;
}
