//===- examples/consistency_demo.cpp - Memory-model race checking ---------===//
///
/// \file
/// Demonstrates the consistency machinery: all the paper's systems are
/// weakly consistent (Table I), so cross-PU visibility needs explicit
/// synchronization. This example (1) verifies the lowered case-study
/// programs are race-free, (2) shows the checker catching a hand-built
/// racy history — a CPU that updates an input after launching the kernel
/// — and (3) shows how ownership transfers (the LRB model) order the
/// same history.
///
/// Build & run:  ./build/examples/consistency_demo
///
//===----------------------------------------------------------------------===//

#include "core/ConsistencyValidation.h"

#include <cstdio>

using namespace hetsim;

int main() {
  // 1. Every lowered case-study program is race-free under weak
  //    consistency (the driver also asserts this on every run).
  std::printf("1. Lowered programs under weak consistency\n\n");
  for (CaseStudy Study : allCaseStudies()) {
    SystemConfig Config = SystemConfig::forCaseStudy(Study);
    bool AllFree = true;
    for (KernelId Kernel : allKernels()) {
      if (Kernel == KernelId::MatrixMul || Kernel == KernelId::Dct)
        continue; // Identical structure; skip the big traces.
      AllFree &= validateRaceFree(lowerKernel(Kernel, Config));
    }
    std::printf("   %-14s %s\n", caseStudyName(Study),
                AllFree ? "race-free" : "RACY");
  }

  // 2. A broken program: the host updates an input after launching the
  //    kernel that reads it.
  std::printf("\n2. A late host update races with the running kernel\n\n");
  ConsistencyChecker Racy(ConsistencyModel::Weak);
  Racy.write(PuKind::Cpu, "in");
  Racy.kernelLaunch();
  Racy.write(PuKind::Cpu, "in"); // Late update: not ordered before...
  Racy.read(PuKind::Gpu, "in");  // ...the kernel's read.
  for (const ConsistencyViolation &V : Racy.check())
    std::printf("   violation: %s (events %zu -> %zu)\n",
                V.Description.c_str(), V.EarlierIndex, V.LaterIndex);

  // 3. The LRB fix: transfer ownership around the late update.
  std::printf("\n3. Ownership transfer (Figure 2(b)) repairs it\n\n");
  ConsistencyChecker Fixed(ConsistencyModel::Weak);
  Fixed.write(PuKind::Cpu, "in");
  Fixed.kernelLaunch();
  Fixed.write(PuKind::Cpu, "in");
  Fixed.release(PuKind::Cpu, "in");  // releaseOwnership(in);
  Fixed.acquire(PuKind::Gpu, "in");  // kernel-side acquireOwnership(in);
  Fixed.read(PuKind::Gpu, "in");
  std::printf("   with release/acquire: %s\n",
              Fixed.isRaceFree() ? "race-free" : "STILL RACY");

  // 4. Under strong consistency the same history has defined outcomes.
  ConsistencyChecker Strong(ConsistencyModel::Strong);
  Strong.write(PuKind::Cpu, "in");
  Strong.kernelLaunch();
  Strong.write(PuKind::Cpu, "in");
  Strong.read(PuKind::Gpu, "in");
  std::printf("\n4. Same history under strong consistency: %s\n",
              Strong.isRaceFree() ? "defined (no undefined races)"
                                  : "racy");
  std::printf("\nThis is why the paper calls the unified, fully coherent,\n"
              "strongly consistent system IDEAL: programmers get defined\n"
              "behaviour without inserting any of the synchronization the\n"
              "weaker (cheaper) models require.\n");
  return 0;
}
