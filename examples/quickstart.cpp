//===- examples/quickstart.cpp - HetSim in 60 lines -----------------------===//
///
/// \file
/// Quickstart: simulate the reduction kernel on two heterogeneous systems
/// — a discrete CPU+GPU connected by PCI-E and the ideal unified machine —
/// and print the execution-time breakdown (sequential / parallel /
/// communication) plus the programmability cost of each address space.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <cstdio>

using namespace hetsim;

int main() {
  std::printf("HetSim quickstart: reduction on two design points\n\n");

  for (CaseStudy Study : {CaseStudy::CpuGpu, CaseStudy::IdealHetero}) {
    SystemConfig Config = SystemConfig::forCaseStudy(Study);
    HeteroSimulator Simulator(Config);
    RunResult Result = Simulator.run(KernelId::Reduction);

    const TimeBreakdown &T = Result.Time;
    std::printf("%-14s total %8.1f us   (seq %7.1f, par %7.1f, comm %7.1f)"
                "  comm %5.1f%%\n",
                Config.Name.c_str(), T.totalNs() / 1e3,
                T.SequentialNs / 1e3, T.ParallelNs / 1e3,
                T.CommunicationNs / 1e3, 100.0 * T.commFraction());
    std::printf("    CPU: %llu insts, IPC %.2f, %llu mispredicts;  "
                "GPU: %llu warp insts;  moved %llu bytes in %llu copies\n\n",
                (unsigned long long)Result.CpuTotal.Insts,
                Result.CpuTotal.ipc(),
                (unsigned long long)Result.CpuTotal.BranchMispredicts,
                (unsigned long long)Result.GpuTotal.Insts,
                (unsigned long long)Result.TransferredBytes,
                (unsigned long long)Result.TransferCount);
  }

  std::printf("Programmability (communication source lines, reduction):\n");
  for (AddressSpaceKind Kind :
       {AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
        AddressSpaceKind::Adsm, AddressSpaceKind::Disjoint}) {
    HostSource Source = emitCommunicationSource(KernelId::Reduction, Kind);
    std::printf("  %-18s %2u lines\n", addressSpaceName(Kind),
                Source.lineCount());
    for (const std::string &Statement : Source.Statements)
      std::printf("      %s\n", Statement.c_str());
  }
  return 0;
}
