//===- examples/design_sweep.cpp - Walking the design space ---------------===//
///
/// \file
/// Uses the experiment harness to walk the memory-model design space the
/// way the paper does: the five case-study systems, then the four address
/// spaces under ideal communication, then a sweep of the PCI-E API cost —
/// ending with the paper's conclusion computed from the measurements.
///
/// Build & run:  ./build/examples/design_sweep
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <cstdio>
#include <map>

using namespace hetsim;

int main() {
  // 1. Case studies on one representative kernel (merge sort: the
  //    paper's highest communication fraction).
  std::printf("1. Case-study systems on merge sort\n\n");
  for (CaseStudy Study : allCaseStudies()) {
    HeteroSimulator Sim(SystemConfig::forCaseStudy(Study));
    RunResult R = Sim.run(KernelId::MergeSort);
    std::printf("   %-14s total %7.1f us, comm %6.1f us (%4.1f%%)\n",
                caseStudyName(Study), R.Time.totalNs() / 1e3,
                R.Time.CommunicationNs / 1e3,
                100.0 * R.Time.commFraction());
  }

  // 2. Address spaces with ideal communication: the space itself does
  //    not matter for performance.
  std::printf("\n2. Address spaces, ideal communication (merge sort)\n\n");
  double MinTotal = 1e300, MaxTotal = 0;
  for (AddressSpaceKind Kind :
       {AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
        AddressSpaceKind::Disjoint, AddressSpaceKind::Adsm}) {
    HeteroSimulator Sim(SystemConfig::forAddressSpaceStudy(Kind));
    RunResult R = Sim.run(KernelId::MergeSort);
    MinTotal = std::min(MinTotal, R.Time.totalNs());
    MaxTotal = std::max(MaxTotal, R.Time.totalNs());
    std::printf("   %-5s total %7.1f us, comm source lines: %u\n",
                addressSpaceShortName(Kind), R.Time.totalNs() / 1e3,
                R.CommSourceLines);
  }
  std::printf("   -> spread %.2f%%: the address space alone does not "
              "affect performance.\n",
              100.0 * (MaxTotal / MinTotal - 1.0));

  // 3. Sweep one hardware knob to show spaces and mechanisms decouple.
  std::printf("\n3. PCI-E api cost sweep on the disjoint system "
              "(merge sort)\n\n");
  for (uint64_t Base : {0ull, 10000ull, 33250ull, 100000ull}) {
    ConfigStore Overrides;
    Overrides.setInt("comm.api_pci_base", int64_t(Base));
    HeteroSimulator Sim(
        SystemConfig::forCaseStudy(CaseStudy::CpuGpu, Overrides));
    RunResult R = Sim.run(KernelId::MergeSort);
    std::printf("   api_pci_base=%-7llu comm %6.1f us\n",
                (unsigned long long)Base, R.Time.CommunicationNs / 1e3);
  }

  // 4. The paper's conclusion, computed.
  std::printf("\n4. Conclusion\n\n");
  std::printf("   locality options:  UNI=%u  PAS=%u  DIS=%u  ADSM=%u\n",
              localityOptionCount(AddressSpaceKind::Unified),
              localityOptionCount(AddressSpaceKind::PartiallyShared),
              localityOptionCount(AddressSpaceKind::Disjoint),
              localityOptionCount(AddressSpaceKind::Adsm));
  std::printf("   comm source lines (merge sort):  UNI=%u  PAS=%u  DIS=%u "
              " ADSM=%u\n",
              communicationSourceLines(KernelId::MergeSort,
                                       AddressSpaceKind::Unified),
              communicationSourceLines(KernelId::MergeSort,
                                       AddressSpaceKind::PartiallyShared),
              communicationSourceLines(KernelId::MergeSort,
                                       AddressSpaceKind::Disjoint),
              communicationSourceLines(KernelId::MergeSort,
                                       AddressSpaceKind::Adsm));
  std::printf("\n   The partially shared space combines near-unified "
              "programmability\n   with the most locality-management and "
              "hardware design options —\n   the paper's recommendation.\n");
  return 0;
}
